"""DRAM channel / memory controller tests."""

import pytest

from repro.config import MemoryConfig
from repro.mem import DramChannel, MemRequest, MemorySystem
from repro.sim import Simulator


def make_channel(**kwargs):
    return DramChannel(0, MemoryConfig(**kwargs))


class TestDramChannel:
    def test_row_miss_then_hit(self):
        ch = make_channel()
        cfg = ch.config
        t1 = ch.access(0x0, 64, now=0)
        assert t1 >= cfg.row_miss_latency          # cold row
        t2 = ch.access(0x40, 64, now=t1)           # same 2KB row
        assert t2 - t1 < cfg.row_miss_latency
        assert ch.row_hit_ratio == pytest.approx(0.5)

    def test_bank_conflict_serialises(self):
        ch = make_channel(banks_per_channel=1)
        t1 = ch.access(0x0, 64, now=0)
        # different row, same (only) bank: must wait for the first access
        t2 = ch.access(0x10000, 64, now=0)
        assert t2 > t1

    def test_different_banks_overlap(self):
        ch = make_channel(banks_per_channel=16)
        t1 = ch.access(0x0, 8, now=0)              # bank 0
        t2 = ch.access(2048, 8, now=0)             # bank 1 (next row)
        # bank access overlaps; only the narrow data burst serialises
        assert t2 - t1 < ch.config.row_miss_latency

    def test_bus_serialises_large_transfers(self):
        ch = make_channel()
        big = 4096
        t1 = ch.access(0, big, now=0)
        t2 = ch.access(2048, big, now=0)
        burst = big / ch.bytes_per_cycle
        assert t2 >= t1 + burst * 0.99

    def test_bandwidth_accounting(self):
        ch = make_channel()
        ch.access(0, 64, now=0)
        assert ch.bytes_moved.value == 64
        assert 0 < ch.utilization(1000) <= 1.0

    def test_bytes_per_cycle_matches_paper_bandwidth(self):
        # 4 channels must aggregate to ~136.5 GB/s => each ~34.1GB/s
        # at 1.5GHz: ~22.75 B/cycle
        ch = DramChannel(0, MemoryConfig(), frequency_ghz=1.5)
        assert ch.bytes_per_cycle == pytest.approx(22.75, rel=0.01)


class TestMemorySystem:
    def test_interleaving_spreads_lines(self):
        sim = Simulator()
        system = MemorySystem(sim, MemoryConfig(channels=4))
        targets = {system.controller_for(i * 64).controller_id for i in range(4)}
        assert targets == {0, 1, 2, 3}

    def test_same_line_same_controller(self):
        sim = Simulator()
        system = MemorySystem(sim, MemoryConfig(channels=4))
        assert (system.controller_for(0x100).controller_id
                == system.controller_for(0x13F).controller_id)

    def test_submit_completes_request_via_sim(self):
        sim = Simulator()
        system = MemorySystem(sim, MemoryConfig(channels=2))
        done = []
        r = MemRequest(addr=0x40, size=64, is_write=False, issue_time=0,
                       on_complete=lambda req, t: done.append(t))
        finish = system.submit(r)
        sim.run()
        assert done == [finish]
        assert r.latency == finish

    def test_parallel_channels_increase_throughput(self):
        def run_with(channels):
            sim = Simulator()
            system = MemorySystem(sim, MemoryConfig(channels=channels))
            finish = 0.0
            for i in range(64):
                r = MemRequest(addr=i * 64, size=64, is_write=False)
                finish = max(finish, system.submit(r))
            sim.run()
            return finish

        assert run_with(4) < run_with(1)

    def test_mean_latency_tracked(self):
        sim = Simulator()
        system = MemorySystem(sim, MemoryConfig(channels=1))
        for i in range(4):
            system.submit(MemRequest(addr=i * 64, size=64, is_write=False))
        sim.run()
        assert system.mean_latency() > 0
        assert system.total_requests == 4
        assert system.total_bytes == 256
