"""Near-memory string-matching unit tests (paper §7 extension)."""

import pytest

from repro.errors import ConfigError, MemoryError_
from repro.mem.pim import PimMatchUnit
from repro.sim import Simulator
from repro.workloads.datasets import low_entropy_string
from repro.workloads.kmp import kmp_count


def make_unit(**kwargs):
    sim = Simulator()
    return sim, PimMatchUnit(sim, **kwargs)


def test_functional_match_count_is_exact():
    sim, unit = make_unit()
    text = low_entropy_string(2000, seed=5)
    unit.store(0x1000, text.encode())
    proc = unit.match(0x1000, "acg")
    sim.run()
    assert proc.result.matches == kmp_count(text, "acg")


def test_scan_time_scales_with_region_size():
    sim, unit = make_unit(scan_bytes_per_cycle=64, command_latency=40)
    unit.store(0x0, bytes(6400))
    proc = unit.match(0x0, "x")
    sim.run()
    assert proc.result.latency == pytest.approx(40 + 100)


def test_commands_serialise_on_the_unit():
    sim, unit = make_unit(scan_bytes_per_cycle=64, command_latency=0)
    unit.store(0x0, bytes(640))
    p1 = unit.match(0x0, "a")
    p2 = unit.match(0x0, "b")
    sim.run()
    assert p2.result.finished_at >= p1.result.finished_at + 10


def test_stats_counted():
    sim, unit = make_unit()
    unit.store(0x0, b"abcabc")
    unit.match(0x0, "abc")
    sim.run()
    assert unit.commands.value == 1
    assert unit.bytes_scanned.value == 6


def test_validation():
    sim = Simulator()
    with pytest.raises(ConfigError):
        PimMatchUnit(sim, scan_bytes_per_cycle=0)
    unit = PimMatchUnit(sim)
    with pytest.raises(MemoryError_):
        unit.store(0x0, b"")
    with pytest.raises(MemoryError_):
        unit.match(0x999, "a")
    unit.store(0x0, b"data")
    with pytest.raises(MemoryError_):
        unit.match(0x0, "")


def test_resident_bytes():
    sim, unit = make_unit()
    unit.store(0x40, b"hello")
    assert unit.resident_bytes(0x40) == 5
    assert unit.resident_bytes(0x0) == 0
