"""Cache model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.mem import Cache


def make_cache(size=1024, line=64, ways=2):
    return Cache("c", size, line, ways)


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert not c.access(0x100).hit
        assert c.access(0x100).hit
        assert c.access(0x13F).hit          # same 64B line

    def test_different_lines_miss_independently(self):
        c = make_cache()
        c.access(0x000)
        assert not c.access(0x040).hit

    def test_miss_ratio(self):
        c = make_cache()
        c.access(0)          # miss
        c.access(0)          # hit
        c.access(64)         # miss
        assert c.miss_ratio == pytest.approx(2 / 3)

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            Cache("bad", 1000, 64, 3)

    def test_num_sets(self):
        c = Cache("c", 16 * 1024, 64, 4)
        assert c.num_sets == 64


class TestLru:
    def test_lru_eviction_order(self):
        # 2-way: sets = 1024/(64*2) = 8; lines 0,8,16 (x64B) map to set 0
        c = make_cache()
        base = 0
        stride = c.num_sets * c.line_bytes
        c.access(base)                       # A
        c.access(base + stride)              # B
        c.access(base + 2 * stride)          # C evicts A (LRU)
        assert not c.probe(base)
        assert c.probe(base + stride)

    def test_hit_refreshes_lru(self):
        c = make_cache()
        stride = c.num_sets * c.line_bytes
        c.access(0)             # A
        c.access(stride)        # B
        c.access(0)             # touch A: B is now LRU
        c.access(2 * stride)    # evicts B
        assert c.probe(0) and not c.probe(stride)

    def test_eviction_reports_victim(self):
        c = make_cache()
        stride = c.num_sets * c.line_bytes
        c.access(0, is_write=True)
        c.access(stride)
        res = c.access(2 * stride)
        assert res.victim_addr == 0
        assert res.victim_dirty is True
        assert c.writebacks.value == 1

    def test_clean_victim_no_writeback(self):
        c = make_cache()
        stride = c.num_sets * c.line_bytes
        c.access(0)
        c.access(stride)
        res = c.access(2 * stride)
        assert res.victim_dirty is False and c.writebacks.value == 0


class TestDirtyAndInvalidate:
    def test_write_marks_dirty_later_hit_keeps(self):
        c = make_cache()
        c.access(0, is_write=True)
        c.access(0)                  # read hit must not clean the line
        stride = c.num_sets * c.line_bytes
        c.access(stride)
        res = c.access(2 * stride)
        assert res.victim_dirty

    def test_invalidate(self):
        c = make_cache()
        c.access(0)
        assert c.invalidate(0) is True
        assert not c.probe(0)
        assert c.invalidate(0) is False

    def test_flush_counts_dirty(self):
        c = make_cache()
        c.access(0, is_write=True)
        c.access(64)
        assert c.flush() == 1
        assert c.resident_lines == 0


class TestCapacityBehaviour:
    def test_working_set_within_capacity_all_hits_after_warmup(self):
        c = Cache("c", 4096, 64, 4)
        addrs = [i * 64 for i in range(4096 // 64)]
        for a in addrs:
            c.access(a)
        for a in addrs:
            assert c.access(a).hit

    def test_streaming_overflow_always_misses(self):
        c = Cache("c", 1024, 64, 2)
        # stream 4x capacity twice: second pass still misses (LRU thrash)
        addrs = [i * 64 for i in range(64)]
        for _ in range(2):
            for a in addrs:
                c.access(a)
        assert c.miss_ratio == 1.0

    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_resident_lines_never_exceed_capacity(self, addrs):
        c = Cache("c", 2048, 64, 2)
        for a in addrs:
            c.access(a)
        assert c.resident_lines <= c.num_sets * c.ways
        assert c.hits.value + c.misses.value == len(addrs)

    @given(st.lists(st.integers(0, 2**16), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_immediate_reaccess_always_hits(self, addrs):
        c = Cache("c", 2048, 64, 2)
        for a in addrs:
            c.access(a)
            assert c.probe(a)
