"""DMA engine tests."""

import pytest

from repro.errors import MemoryError_
from repro.mem import DmaEngine, Scratchpad
from repro.mem.spm import DMA_DST_OFFSET, DMA_SIZE_OFFSET, DMA_SRC_OFFSET
from repro.sim import Simulator


def make_pair():
    sim = Simulator()
    dma = DmaEngine(sim, bytes_per_cycle=32, setup_latency=8)
    src, dst = Scratchpad(0), Scratchpad(1)
    return sim, dma, src, dst


def test_copy_moves_payload():
    sim, dma, src, dst = make_pair()
    src.write_bytes(src.base_addr, b"ring-to-ring")
    proc = dma.copy(src, dst, src.base_addr, dst.base_addr + 64, 12)
    sim.run()
    assert proc.finished and proc.result == 12
    assert dst.read_bytes(dst.base_addr + 64, 12) == b"ring-to-ring"


def test_transfer_time_scales_with_size():
    sim, dma, src, dst = make_pair()
    assert dma.transfer_cycles(32) == 8 + 1
    assert dma.transfer_cycles(33) == 8 + 2
    assert dma.transfer_cycles(3200) == 8 + 100


def test_copy_completion_time():
    sim, dma, src, dst = make_pair()
    dma.copy(src, dst, src.base_addr, dst.base_addr, 64)
    sim.run()
    assert sim.now == dma.transfer_cycles(64)


def test_engine_serialises_back_to_back_transfers():
    sim, dma, src, dst = make_pair()
    dma.copy(src, dst, src.base_addr, dst.base_addr, 32)
    dma.copy(src, dst, src.base_addr, dst.base_addr + 32, 32)
    sim.run()
    assert sim.now == 2 * dma.transfer_cycles(32)


def test_descriptor_kick_uses_control_registers():
    sim, dma, src, dst = make_pair()
    src.write_bytes(src.base_addr + 128, b"via-descriptor")
    src.write_control(DMA_SRC_OFFSET, src.base_addr + 128)
    src.write_control(DMA_DST_OFFSET, dst.base_addr)
    src.write_control(DMA_SIZE_OFFSET, 14)
    dma.kick_from_descriptor(src, dst)
    sim.run()
    assert dst.read_bytes(dst.base_addr, 14) == b"via-descriptor"


def test_prefetch_fill_writes_instruction_segment():
    sim, dma, _, dst = make_pair()
    segment = bytes(range(64))
    dma.prefetch_fill(dst, dst.base_addr + 256, segment)
    sim.run()
    assert dst.read_bytes(dst.base_addr + 256, 64) == segment
    assert dma.bytes_moved.value == 64


def test_zero_size_rejected():
    sim, dma, src, dst = make_pair()
    with pytest.raises(MemoryError_):
        dma.copy(src, dst, src.base_addr, dst.base_addr, 0)
    with pytest.raises(MemoryError_):
        dma.prefetch_fill(dst, dst.base_addr, b"")


def test_bad_bandwidth_rejected():
    with pytest.raises(MemoryError_):
        DmaEngine(Simulator(), bytes_per_cycle=0)
