"""Scratchpad and address-map tests."""

import pytest

from repro.errors import MemoryError_
from repro.mem import SPM_REGION_BASE, Scratchpad, SpmAddressMap
from repro.mem.spm import DMA_DST_OFFSET, DMA_SIZE_OFFSET, DMA_SRC_OFFSET


class TestScratchpad:
    def test_default_base_address_is_per_core(self):
        s0 = Scratchpad(0)
        s1 = Scratchpad(1)
        assert s0.base_addr == SPM_REGION_BASE
        assert s1.base_addr == SPM_REGION_BASE + s0.size_bytes

    def test_read_write_round_trip(self):
        spm = Scratchpad(0)
        spm.write(spm.base_addr + 16, 0xDEAD, 4)
        assert spm.read(spm.base_addr + 16, 4) == 0xDEAD

    def test_bytes_interface(self):
        spm = Scratchpad(0)
        spm.write_bytes(spm.base_addr, b"abc")
        assert spm.read_bytes(spm.base_addr, 3) == b"abc"

    def test_out_of_range_raises(self):
        spm = Scratchpad(0)
        with pytest.raises(MemoryError_):
            spm.read(spm.base_addr - 1, 1)
        with pytest.raises(MemoryError_):
            spm.read(spm.base_addr + spm.size_bytes - 2, 4)   # straddles end

    def test_control_window_is_top_256_bytes(self):
        spm = Scratchpad(0)
        assert spm.control_base == spm.base_addr + spm.size_bytes - 256
        assert spm.is_control(spm.control_base)
        assert spm.is_control(spm.base_addr + spm.size_bytes - 1)
        assert not spm.is_control(spm.control_base - 1)

    def test_data_capacity_excludes_control(self):
        spm = Scratchpad(0, size_bytes=128 * 1024)
        assert spm.data_bytes == 128 * 1024 - 256

    def test_dma_descriptor_round_trip(self):
        spm = Scratchpad(0)
        spm.write_control(DMA_SRC_OFFSET, 0x111)
        spm.write_control(DMA_DST_OFFSET, 0x222)
        spm.write_control(DMA_SIZE_OFFSET, 64)
        assert spm.dma_descriptor() == (0x111, 0x222, 64)

    def test_control_window_must_fit(self):
        with pytest.raises(MemoryError_):
            Scratchpad(0, size_bytes=128, control_bytes=256)

    def test_stats_counted(self):
        spm = Scratchpad(0)
        spm.write(spm.base_addr, 1, 1)
        spm.read(spm.base_addr, 1)
        assert spm.reads.value == 1 and spm.writes.value == 1


class TestSpmAddressMap:
    def make_map(self, n=4):
        spms = {i: Scratchpad(i) for i in range(n)}
        return spms, SpmAddressMap(spms)

    def test_route_local_remote_mem(self):
        spms, amap = self.make_map()
        addr0 = spms[0].base_addr + 8
        assert amap.route(addr0, core_id=0) == "spm-local"
        assert amap.route(addr0, core_id=1) == "spm-remote"
        assert amap.route(0x1000, core_id=0) == "mem"

    def test_owner_of(self):
        spms, amap = self.make_map()
        assert amap.owner_of(spms[2].base_addr) is spms[2]
        assert amap.owner_of(0x100) is None
        # region hole past the last SPM
        end = spms[3].base_addr + spms[3].size_bytes
        assert amap.owner_of(end) is None

    def test_spm_lookup(self):
        spms, amap = self.make_map()
        assert amap.spm(3) is spms[3]
        assert len(amap) == 4

    def test_empty_map(self):
        amap = SpmAddressMap({})
        assert amap.owner_of(SPM_REGION_BASE) is None
        assert amap.route(SPM_REGION_BASE, 0) == "mem"

    def test_non_uniform_layout_falls_back_to_search(self):
        """Custom base addresses disable the O(1) shift lookup; the map
        must still resolve owners correctly by searching."""
        spms = {
            0: Scratchpad(0, base_addr=SPM_REGION_BASE),
            1: Scratchpad(1, base_addr=SPM_REGION_BASE + (1 << 24)),
        }
        amap = SpmAddressMap(spms)
        assert amap._uniform_size is None
        assert amap.owner_of(spms[0].base_addr + 8) is spms[0]
        assert amap.owner_of(spms[1].base_addr + 8) is spms[1]
        # a hole between the two regions belongs to nobody
        assert amap.owner_of(SPM_REGION_BASE + (1 << 23)) is None
