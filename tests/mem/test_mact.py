"""MACT behaviour tests (paper §3.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MACTConfig
from repro.mem import MACT, MemRequest, Priority
from repro.sim import Simulator


def make_mact(**cfg_kwargs):
    sim = Simulator()
    batches = []
    mact = MACT(sim, batches.append, MACTConfig(**cfg_kwargs))
    return sim, mact, batches


def req(addr, size=4, write=False, prio=Priority.NORMAL, core=0):
    return MemRequest(addr=addr, size=size, is_write=write, core_id=core,
                      priority=prio)


class TestCollection:
    def test_requests_collect_until_deadline(self):
        sim, mact, batches = make_mact(threshold_cycles=16)
        mact.submit(req(0x100))
        mact.submit(req(0x104))
        assert batches == [] and mact.pending_lines == 1
        sim.run(until=15)
        assert batches == []
        sim.run(until=16)
        assert len(batches) == 1
        assert batches[0].reason == "deadline"
        assert len(batches[0].requests) == 2

    def test_full_bitmap_flushes_immediately(self):
        sim, mact, batches = make_mact(line_span_bytes=8)
        mact.submit(req(0x100, size=8))
        assert len(batches) == 1 and batches[0].reason == "full"
        assert mact.pending_lines == 0

    def test_reads_and_writes_use_separate_lines(self):
        sim, mact, batches = make_mact()
        mact.submit(req(0x100, write=False))
        mact.submit(req(0x108, write=True))
        assert mact.pending_lines == 2

    def test_same_line_requests_merge(self):
        sim, mact, batches = make_mact(line_span_bytes=64)
        for off in range(0, 32, 4):
            mact.submit(req(0x1000 + off))
        assert mact.pending_lines == 1

    def test_distinct_lines_for_distant_addresses(self):
        sim, mact, batches = make_mact(line_span_bytes=64)
        mact.submit(req(0x0))
        mact.submit(req(0x40))
        assert mact.pending_lines == 2

    def test_request_crossing_line_boundary_is_split(self):
        sim, mact, batches = make_mact(line_span_bytes=64)
        parent = req(0x3C, size=16)              # crosses 0x40
        mact.submit(parent)
        sim.run(until=100)
        assert parent.size == 16                 # caller's request untouched
        assert mact.splits.value == 1
        assert len(batches) == 2                 # one line-local piece each
        pieces = sorted((r.addr, r.size) for b in batches for r in b.requests)
        assert pieces == [(0x3C, 4), (0x40, 12)]
        assert all(r.meta is parent for b in batches for r in b.requests)

    def test_split_parent_completes_with_its_last_piece(self):
        sim, mact, batches = make_mact(line_span_bytes=64)
        parent = req(0x3C, size=16)
        mact.submit(parent)
        sim.run(until=100)
        children = [r for b in batches for r in b.requests]
        children.sort(key=lambda r: r.addr)
        children[0].complete(110.0)
        assert parent.finish_time is None        # one piece still in flight
        children[1].complete(125.0)
        assert parent.finish_time == 125.0       # joined on the last piece


class TestDeadline:
    def test_deadline_measured_from_line_creation(self):
        sim, mact, batches = make_mact(threshold_cycles=10)
        mact.submit(req(0x100))
        sim.run(until=5)
        mact.submit(req(0x104))         # same line: deadline NOT extended
        sim.run(until=10)
        assert len(batches) == 1

    def test_stale_deadline_event_ignored_after_full_flush(self):
        sim, mact, batches = make_mact(line_span_bytes=8, threshold_cycles=10)
        mact.submit(req(0x100, size=8))          # flush by full at t=0
        sim.run(until=20)                         # stale deadline fires, no-op
        assert len(batches) == 1
        # a new line at the same address flushes independently
        mact.submit(req(0x100, size=4))
        sim.run(until=40)
        assert len(batches) == 2 and batches[1].reason == "deadline"

    @pytest.mark.parametrize("threshold", [4, 8, 16, 32, 64])
    def test_threshold_configures_flush_time(self, threshold):
        sim, mact, batches = make_mact(threshold_cycles=threshold)
        mact.submit(req(0x100))
        sim.run(until=threshold - 1)
        assert not batches
        sim.run(until=threshold)
        assert len(batches) == 1


class TestBypassAndDisable:
    def test_realtime_requests_bypass(self):
        sim, mact, batches = make_mact()
        mact.submit(req(0x100, prio=Priority.REALTIME))
        assert len(batches) == 1 and batches[0].reason == "bypass"
        assert mact.bypasses.value == 1
        assert mact.pending_lines == 0

    def test_bypass_disabled_collects_realtime(self):
        sim, mact, batches = make_mact(bypass_priority=False)
        mact.submit(req(0x100, prio=Priority.REALTIME))
        assert not batches and mact.pending_lines == 1

    def test_disabled_mact_forwards_everything(self):
        sim, mact, batches = make_mact(enabled=False)
        mact.submit(req(0x100))
        mact.submit(req(0x104))
        assert len(batches) == 2
        assert all(len(b.requests) == 1 for b in batches)


class TestCapacity:
    def test_table_overflow_flushes_oldest(self):
        sim, mact, batches = make_mact(lines=2, threshold_cycles=1000)
        mact.submit(req(0x000))
        mact.submit(req(0x100))
        mact.submit(req(0x200))          # evicts the 0x000 line
        assert len(batches) == 1
        assert batches[0].base_addr == 0x000
        assert batches[0].reason == "capacity"
        assert mact.pending_lines == 2

    def test_flush_all_drains(self):
        sim, mact, batches = make_mact(threshold_cycles=1000)
        mact.submit(req(0x000))
        mact.submit(req(0x100))
        assert mact.flush_all() == 2
        assert mact.pending_lines == 0 and len(batches) == 2
        # drains are their own flush reason, not conflated with capacity
        assert all(b.reason == "drain" for b in batches)
        assert mact.flush_drain.value == 2
        assert mact.flush_capacity.value == 0


class TestStats:
    def test_request_reduction_ratio(self):
        sim, mact, batches = make_mact(line_span_bytes=64, threshold_cycles=16)
        for off in range(0, 16, 4):
            mact.submit(req(0x1000 + off))
        sim.run(until=100)
        assert mact.request_reduction == pytest.approx(4.0)

    def test_batch_wanted_bytes(self):
        sim, mact, batches = make_mact()
        mact.submit(req(0x100, size=4))
        mact.submit(req(0x108, size=2))
        sim.run(until=100)
        assert batches[0].wanted_bytes == 6

    @given(st.lists(st.tuples(st.integers(0, 1023), st.sampled_from([1, 2, 4, 8])),
                    min_size=1, max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_every_request_leaves_in_exactly_one_batch(self, accesses):
        sim = Simulator()
        batches = []
        mact = MACT(sim, batches.append, MACTConfig(lines=8, threshold_cycles=16))
        submitted = {}
        for addr, size in accesses:
            r = req(addr, size=size)
            submitted[r.req_id] = (addr, size)
            mact.submit(r)
        sim.run(until=10_000)
        mact.flush_all()
        # boundary-crossers leave as several line-local pieces tagged with
        # the original request via meta; per origin, the pieces must cover
        # the original byte range exactly once
        covered = {rid: set() for rid in submitted}
        for b in batches:
            for r in b.requests:
                origin = r.meta.req_id if isinstance(r.meta, MemRequest) else r.req_id
                span = set(range(r.addr, r.addr + r.size))
                assert not (covered[origin] & span), "byte left twice"
                covered[origin] |= span
        for rid, (addr, size) in submitted.items():
            assert covered[rid] == set(range(addr, addr + size))

    @given(st.lists(st.tuples(st.integers(0, 100),           # arrival gap
                              st.integers(0, 2047),          # address
                              st.sampled_from([1, 2, 4, 8])),
                    min_size=1, max_size=60),
           st.sampled_from([4, 8, 16, 32]))
    @settings(max_examples=25, deadline=None)
    def test_timeliness_guarantee(self, schedule, threshold):
        """Paper §3.4: 'Each item of MACT must be packaged and sent to
        memory in N cycles to maintain timeliness' — no request ever
        waits in the table longer than the threshold."""
        sim = Simulator()
        exits = {}

        def send(batch):
            for r in batch.requests:
                # pieces of a split request report under their origin; sim
                # time is monotonic so the last piece records the max exit
                origin = r.meta.req_id if isinstance(r.meta, MemRequest) else r.req_id
                exits[origin] = sim.now

        mact = MACT(sim, send, MACTConfig(lines=16,
                                          threshold_cycles=threshold))
        entries = {}
        t = 0
        for gap, addr, size in schedule:
            t += gap
            r = req(addr, size=size)
            entries[r.req_id] = t
            sim.schedule_at(t, mact.submit, r)
        sim.run()
        # everything flushed by its line deadline, nothing left behind
        assert mact.pending_lines == 0 or sim.run() >= 0
        mact.flush_all()
        for rid, entered in entries.items():
            assert rid in exits
            assert exits[rid] - entered <= threshold
