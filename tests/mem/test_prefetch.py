"""Stream prefetcher unit tests (paper §7 extension)."""

import pytest

from repro.errors import ConfigError
from repro.mem import MemRequest
from repro.mem.prefetch import StreamPrefetcher


def make_pf(**kwargs):
    fetched = []
    pf = StreamPrefetcher(0, fetch=fetched.append, **kwargs)
    return pf, fetched


def complete_all(fetched, at=10.0):
    for req in fetched:
        if req.finish_time is None:
            req.complete(at)


class TestTraining:
    def test_two_sequential_reads_confirm_a_stream(self):
        pf, fetched = make_pf()
        pf.observe(100, 4, now=0)       # new tracker
        assert not fetched
        pf.observe(104, 4, now=1)       # confidence 1
        assert not fetched
        pf.observe(108, 4, now=2)       # confidence 2 -> launch
        assert len(fetched) == 1
        assert fetched[0].addr == 112
        assert fetched[0].size == pf.window_bytes

    def test_random_accesses_never_launch(self):
        pf, fetched = make_pf()
        for addr in (100, 5000, 90000, 120):
            pf.observe(addr, 4, now=0)
        assert not fetched

    def test_tracker_capacity_bounded(self):
        pf, _ = make_pf(max_trackers=2)
        for i in range(10):
            pf.observe(i * 100_000, 4, now=0)
        assert len(pf._trackers) <= 2


class TestLookup:
    def stream_in(self, pf, fetched):
        for i in range(3):
            pf.observe(100 + i * 4, 4, now=i)
        complete_all(fetched, at=5.0)

    def test_hit_after_fill(self):
        pf, fetched = make_pf()
        self.stream_in(pf, fetched)
        assert pf.lookup(112, 4, now=6.0)
        assert pf.lookup(112 + 252, 4, now=6.0)      # window end
        assert pf.hit_ratio > 0

    def test_no_hit_before_fill_completes(self):
        pf, fetched = make_pf()
        for i in range(3):
            pf.observe(100 + i * 4, 4, now=i)
        # fill not completed yet
        assert not pf.lookup(112, 4, now=3.0)

    def test_no_hit_outside_window(self):
        pf, fetched = make_pf()
        self.stream_in(pf, fetched)
        assert not pf.lookup(112 + pf.window_bytes, 4, now=6.0)

    def test_window_eviction(self):
        pf, fetched = make_pf(max_windows=1)
        self.stream_in(pf, fetched)
        # confirm a second stream far away -> evicts the first window
        for i in range(3):
            pf.observe(1_000_000 + i * 4, 4, now=10 + i)
        complete_all(fetched, at=20.0)
        assert not pf.lookup(112, 4, now=21.0)


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            StreamPrefetcher(0, fetch=lambda r: None, window_bytes=0)


class TestChipIntegration:
    def test_prefetch_speeds_up_streaming_workload(self):
        """End to end: a stream-heavy profile runs faster with the
        prefetcher, and the prefetcher actually hits."""
        import dataclasses

        from repro.chip import SmarCoChip
        from repro.config import smarco_scaled
        from repro.workloads import get_profile

        profile = dataclasses.replace(
            get_profile("kmp"), uncached_fraction=0.15,
            shared_uncached_fraction=0.0, streaming_locality=1.0,
        )

        def run(prefetch):
            chip = SmarCoChip(smarco_scaled(1, 8), seed=9,
                              spm_prefetch=prefetch)
            chip.load_profile(profile, threads_per_core=8,
                              instrs_per_thread=400)
            result = chip.run()
            return chip, result

        chip_on, on = run(True)
        chip_off, off = run(False)
        hits = sum(p.hits.value for p in chip_on.prefetchers if p)
        assert hits > 0
        assert on.cycles < off.cycles
        assert on.mean_request_latency < off.mean_request_latency
