"""Xeon cache-hierarchy tests (substrate for paper Fig 1c/1d)."""

import pytest

from repro.config import XeonConfig
from repro.mem import Cache, CacheHierarchy
from repro.sim import StatsRegistry


def test_cold_access_goes_to_memory():
    h = CacheHierarchy(0)
    res = h.access(0x1000)
    assert res.level == "MEM"
    assert res.latency == h.config.dram_latency
    assert not res.l1_hit


def test_second_access_hits_l1():
    h = CacheHierarchy(0)
    h.access(0x1000)
    res = h.access(0x1000)
    assert res.level == "L1" and res.l1_hit
    assert res.latency == h.config.l1_hit_latency


def test_l1_eviction_leaves_l2_copy():
    cfg = XeonConfig()
    h = CacheHierarchy(0, cfg)
    # fill far past L1 capacity within one L2-resident footprint
    footprint = cfg.l1d_bytes * 4
    for addr in range(0, footprint, cfg.cache_line_bytes):
        h.access(addr)
    # oldest line fell out of L1 but should still be in L2
    res = h.access(0)
    assert res.level in ("L2", "L1")
    if res.level == "L2":
        assert res.latency == cfg.l2_hit_latency


def test_instruction_side_uses_l1i():
    h = CacheHierarchy(0)
    h.access(0x4000, is_instruction=True)
    assert h.l1i.accesses == 1 and h.l1d.accesses == 0
    # data access to the same address does not hit L1D
    res = h.access(0x4000)
    assert res.level != "L1"


def test_shared_llc_between_cores():
    reg = StatsRegistry()
    llc = CacheHierarchy.make_shared_llc(registry=reg)
    h0 = CacheHierarchy(0, shared_llc=llc, registry=reg)
    h1 = CacheHierarchy(1, shared_llc=llc, registry=reg)
    h0.access(0x8000)
    res = h1.access(0x8000)
    assert res.level == "LLC"         # brought in by core 0


def test_miss_ratios_report_all_levels():
    h = CacheHierarchy(0)
    for addr in range(0, 64 * 100, 64):
        h.access(addr)
    ratios = h.miss_ratios()
    assert set(ratios) == {"L1", "L2", "LLC"}
    assert all(0 <= v <= 1 for v in ratios.values())


def test_streaming_miss_ratio_increases_down_hierarchy_then_memory():
    """A >LLC streaming footprint must miss everywhere (paper Fig 1c:
    HTC-like streaming shows high miss ratios at every level)."""
    cfg = XeonConfig(llc_bytes=256 * 1024)       # shrink LLC to keep test fast
    h = CacheHierarchy(0, cfg)
    stride = cfg.cache_line_bytes
    footprint = cfg.llc_bytes * 4
    for _ in range(2):
        for addr in range(0, footprint, stride):
            h.access(addr)
    assert h.miss_ratios()["L1"] > 0.9
    assert h.miss_ratios()["LLC"] > 0.9
