"""Overlapping/duplicate-byte submissions to one MACT line (satellite of
the invariant-audit PR).

Several threads of a gang may want the same bytes of a shared dataset, so
one line can legally hold members whose byte ranges overlap.  The bitmap
deduplicates coverage; ``Batch.wanted_bytes`` intentionally double-counts
(it measures demand), ``Batch.unique_bytes`` measures the line's actual
coverage, and the audit layer's union check must accept overlap.
"""

from repro.config import AuditConfig, MACTConfig
from repro.mem import MACT, MemRequest
from repro.sim import Auditor, Simulator


def make_mact(**cfg_kwargs):
    sim = Simulator()
    batches = []
    mact = MACT(sim, batches.append, MACTConfig(**cfg_kwargs))
    return sim, mact, batches


def req(addr, size=4):
    return MemRequest(addr=addr, size=size, is_write=False)


class TestOverlappingMembers:
    def test_duplicate_submission_merges_into_one_line(self):
        sim, mact, batches = make_mact(line_span_bytes=64)
        mact.submit(req(0x100, size=4))
        mact.submit(req(0x100, size=4))          # same bytes again
        assert mact.pending_lines == 1
        sim.run()
        assert len(batches) == 1
        assert len(batches[0].requests) == 2     # both members ride the batch

    def test_wanted_bytes_double_counts_but_unique_bytes_does_not(self):
        sim, mact, batches = make_mact(line_span_bytes=64)
        mact.submit(req(0x100, size=4))
        mact.submit(req(0x100, size=4))          # exact duplicate
        mact.submit(req(0x102, size=4))          # partial overlap: 2 new bytes
        sim.run()
        (batch,) = batches
        assert batch.wanted_bytes == 12          # 4 + 4 + 4, demand-side
        assert batch.unique_bytes == 6           # bytes 0x100..0x105 once

    def test_disjoint_members_have_equal_counts(self):
        sim, mact, batches = make_mact(line_span_bytes=64)
        mact.submit(req(0x100, size=4))
        mact.submit(req(0x108, size=2))
        sim.run()
        (batch,) = batches
        assert batch.wanted_bytes == batch.unique_bytes == 6

    def test_overlap_can_fill_the_bitmap_only_once(self):
        sim, mact, batches = make_mact(line_span_bytes=8)
        mact.submit(req(0x100, size=6))
        mact.submit(req(0x102, size=6))          # overlaps, completes the line
        assert len(batches) == 1 and batches[0].reason == "full"
        assert batches[0].unique_bytes == 8

    def test_single_send_batches_report_their_own_size(self):
        sim, mact, batches = make_mact(enabled=False)
        mact.submit(req(0x100, size=4))
        assert batches[0].unique_bytes == batches[0].wanted_bytes == 4


class TestOverlapUnderAudit:
    def test_overlapping_line_passes_the_union_check(self):
        sim, mact, batches = make_mact(line_span_bytes=64, threshold_cycles=8)
        auditor = Auditor(AuditConfig(enabled=True, fail_fast=False))
        auditor.install(mact)
        mact.submit(req(0x100, size=4))
        mact.submit(req(0x100, size=4))
        mact.submit(req(0x102, size=8))
        sim.run()
        mact.flush_all()
        auditor.end_of_run(sim.now)
        assert auditor.clean, [str(v) for v in auditor.violations]

    def test_split_pieces_of_one_parent_may_overlap_nothing(self):
        """A boundary-crossing request's pieces land in different lines,
        each line-local — the audit's member check accepts all of them."""
        sim, mact, batches = make_mact(line_span_bytes=32, threshold_cycles=8)
        auditor = Auditor(AuditConfig(enabled=True, fail_fast=False))
        auditor.install(mact)
        mact.submit(req(0x1C, size=40))          # spans three 32B lines
        sim.run()
        mact.flush_all()
        auditor.end_of_run(sim.now)
        assert auditor.clean, [str(v) for v in auditor.violations]
        pieces = sorted((r.addr, r.size) for b in batches for r in b.requests)
        assert pieces == [(0x1C, 4), (0x20, 32), (0x40, 4)]
