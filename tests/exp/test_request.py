"""RunRequest: the frozen, serialisable run description."""

import dataclasses

import pytest

from repro.config import smarco_scaled, xeon_default
from repro.errors import ConfigError
from repro.exp import RunRequest, request_from_snapshot


class TestRunRequest:
    def test_frozen(self):
        request = RunRequest()
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.workload = "rnc"

    def test_replace_returns_new_request(self):
        request = RunRequest(workload="kmp", seed=0)
        other = request.replace(seed=7)
        assert other.seed == 7 and request.seed == 0
        assert other.workload == "kmp"

    def test_validate_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            RunRequest(kind="gpu").validate()

    def test_validate_rejects_nonpositive_counts(self):
        with pytest.raises(ConfigError):
            RunRequest(threads_per_core=0).validate()
        with pytest.raises(ConfigError):
            RunRequest(xeon_instrs_per_thread=0).validate()

    def test_validate_accepts_every_kind(self):
        for kind in ("tcg", "smarco", "xeon", "compare"):
            RunRequest(kind=kind).validate()


class TestEnergyKnobs:
    """DVFS / technology knobs validate eagerly and key the cache."""

    def test_unknown_dvfs_rejected(self):
        with pytest.raises(ConfigError, match="unknown dvfs point"):
            RunRequest(dvfs="ludicrous").validate()

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigError):
            RunRequest(technology_nm=22).validate()

    def test_dvfs_and_node_are_cache_key_axes(self):
        from repro.exp.cache import request_key

        base = RunRequest(workload="kmp")
        keys = {
            request_key(base),
            request_key(base.replace(dvfs="eco")),
            request_key(base.replace(technology_nm=40)),
            request_key(base.replace(power_gate_idle=True)),
        }
        assert len(keys) == 4


class TestShardValidation:
    def test_negative_shards_rejected(self):
        with pytest.raises(ConfigError, match="shards"):
            RunRequest(kind="smarco", shards=-1).validate()

    def test_shards_require_chip_kind(self):
        with pytest.raises(ConfigError, match="cannot shard"):
            RunRequest(kind="tcg", shards=2).validate()

    def test_shards_conflict_with_warm_start(self):
        with pytest.raises(ConfigError, match="warm"):
            RunRequest(kind="smarco", shards=1, run_cycles=1000.0,
                       warm_cycles=100.0).validate()

    def test_quantum_requires_shards(self):
        with pytest.raises(ConfigError, match="quantum"):
            RunRequest(kind="smarco", shard_quantum=2.0).validate()

    def test_sharded_request_validates(self):
        RunRequest(kind="smarco", shards=2, shard_quantum=2.0).validate()


class TestSnapshotRoundtrip:
    def test_plain_request(self):
        request = RunRequest(kind="xeon", workload="search", seed=11,
                             xeon_threads=12)
        snap = request.snapshot()
        assert snap["kind"] == "xeon" and snap["seed"] == 11
        assert request_from_snapshot(snap) == request

    def test_nested_configs_roundtrip(self):
        request = RunRequest(
            kind="compare", workload="terasort", seed=3,
            smarco_config=smarco_scaled(2, 8),
            xeon_config=xeon_default(),
            power_config=smarco_scaled(1, 4),
            technology_nm=40,
        )
        snap = request.snapshot()
        # the snapshot is plain data (JSON-ready), not dataclasses
        assert isinstance(snap["smarco_config"], dict)
        assert isinstance(snap["smarco_config"]["mact"], dict)
        rebuilt = request_from_snapshot(snap)
        assert rebuilt == request
        assert rebuilt.smarco_config.sub_rings == 2
        assert rebuilt.power_config.sub_rings == 1

    def test_snapshot_is_json_serialisable(self):
        import json

        request = RunRequest(smarco_config=smarco_scaled(1, 2))
        text = json.dumps(request.snapshot())
        assert request_from_snapshot(json.loads(text)) == request
