"""The parallel experiment runner.

Acceptance criterion for the subsystem: a 2-worker sweep over >= 8
points produces results identical (same stats snapshots, per seed) to a
serial run of the same spec, and re-running completes with 100% cache
hits measurably faster than the cold run.
"""

import json
import time

import pytest

from repro.config import smarco_scaled
from repro.exp import (ExperimentSpec, Runner, RunRequest, resolve_shards,
                       resolve_workers)

BASE = RunRequest(kind="smarco", workload="kmp",
                  smarco_config=smarco_scaled(1, 4),
                  threads_per_core=4, instrs_per_thread=80)

SPEC = ExperimentSpec.grid("runner-sweep", BASE,
                           workload=["kmp", "wordcount"],
                           seed=[0, 1],
                           core_policy=["inpair", "coarse"])


class TestParallelDeterminism:
    def test_two_workers_match_serial_bit_for_bit(self, tmp_path):
        assert SPEC.n_points >= 8
        serial = Runner(workers=1, base_dir=tmp_path / "serial").run(SPEC)
        parallel = Runner(workers=2, base_dir=tmp_path / "par").run(SPEC)
        assert parallel.workers == 2
        assert serial.n_points == parallel.n_points == SPEC.n_points
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert a.request == b.request      # same point order
            assert a.stats == b.stats          # identical stats snapshots
            assert a.result == b.result

    def test_parallel_run_used_multiple_workers(self, tmp_path):
        sweep = Runner(workers=2, base_dir=tmp_path).run(SPEC)
        workers = {r.worker for r in sweep.records}
        assert len(workers) >= 2               # actually fanned out

    def test_warm_rerun_is_all_hits_and_faster(self, tmp_path):
        runner = Runner(workers=1, base_dir=tmp_path)
        t0 = time.perf_counter()
        cold = runner.run(SPEC)
        cold_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = runner.run(SPEC)
        warm_wall = time.perf_counter() - t0
        assert cold.hits == 0
        assert warm.hits == SPEC.n_points      # 100% cache hits
        assert warm.hit_rate == 1.0
        assert warm_wall < cold_wall           # measurably faster


class TestTelemetry:
    def test_one_record_per_point_with_full_payload(self, tmp_path):
        runner = Runner(workers=1, base_dir=tmp_path)
        sweep = runner.run(SPEC)
        files = sorted(runner.runs_dir.glob("*.json"))
        assert len(files) == SPEC.n_points
        record = json.loads(files[0].read_text())
        for field in ("run_id", "spec", "label", "cache", "worker",
                      "wall_time_s", "code_version", "timestamp",
                      "request", "result", "stats"):
            assert field in record, field
        assert record["spec"] == "runner-sweep"
        assert record["cache"] == "miss"
        assert record["result"]["type"] == "SmarcoRunResult"
        assert record["stats"]                 # full StatsRegistry dump
        assert sweep.records[0].worker == "serial"

    def test_hit_records_overwrite_with_cache_state(self, tmp_path):
        runner = Runner(workers=1, base_dir=tmp_path)
        runner.run(SPEC)
        runner.run(SPEC)
        files = sorted(runner.runs_dir.glob("*.json"))
        assert len(files) == SPEC.n_points     # overwritten, not duplicated
        assert all(json.loads(f.read_text())["cache"] == "hit"
                   for f in files)


class TestWorkerResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(None) == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_garbage_env_is_serial_and_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS='many'"):
            assert resolve_workers(None) == 1


class TestShardResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "7")
        assert resolve_shards(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert resolve_shards(None) == 4

    def test_default_is_unsharded(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None) == 0

    def test_garbage_env_is_unsharded_and_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2.5")
        with pytest.warns(RuntimeWarning, match="REPRO_SHARDS='2.5'"):
            assert resolve_shards(None) == 0
