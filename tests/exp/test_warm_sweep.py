"""Warm-started sweeps: shared warm-up prefix, identical results.

A fig-style sweep over the measurement horizon (``run_cycles``) must
return results bit-identical to the cold sweep while simulating the
warm-up prefix exactly once, and the telemetry must distinguish a
warm-start partial hit from a full-run cache hit.
"""

import pytest

from repro.errors import ConfigError
from repro.exp import ExperimentSpec, RunRequest
from repro.exp.cache import HIT_KINDS, ResultCache
from repro.exp.runner import Runner

BASE = RunRequest(kind="sched", sched_policy="laxity",
                  sched_scenario="deadline-storm", sched_tasks=24,
                  sched_contexts=8, seed=2,
                  warm_cycles=50_000.0, warm_axes=("run_cycles",))
HORIZONS = (300_000.0, 600_000.0)


def _spec():
    return ExperimentSpec.grid("warm-fig", BASE, run_cycles=HORIZONS)


@pytest.fixture(scope="module")
def sweeps(tmp_path_factory):
    cold_dir = tmp_path_factory.mktemp("cold")
    warm_dir = tmp_path_factory.mktemp("warm")
    cold = Runner(workers=1, base_dir=cold_dir).run(_spec())
    warm_runner = Runner(workers=1, base_dir=warm_dir)
    warm = warm_runner.run(_spec(), warm_start=True)
    return cold, warm, warm_runner


class TestWarmEqualsCold:
    def test_results_bit_identical(self, sweeps):
        cold, warm, _runner = sweeps
        assert len(cold.outcomes) == len(warm.outcomes) == len(HORIZONS)
        for c, w in zip(cold.outcomes, warm.outcomes):
            assert c.result.to_dict() == w.result.to_dict()
            assert c.stats == w.stats

    def test_warm_prefix_eliminated_once(self, sweeps):
        _cold, warm, runner = sweeps
        # one shared checkpoint file for the whole group
        assert len(list(runner.warm_dir.glob("*.ckpt.gz"))) == 1
        assert warm.warm_hits == len(HORIZONS)
        assert warm.misses == 0 and warm.hits == 0

    def test_telemetry_distinguishes_hit_kinds(self, sweeps):
        cold, warm, runner = sweeps
        assert [r.cache for r in cold.records] == ["miss"] * len(HORIZONS)
        assert [r.cache for r in warm.records] == ["warm"] * len(HORIZONS)
        assert warm.hit_counts == {"hit": 0, "warm": len(HORIZONS),
                                   "miss": 0}
        # a re-run of the same spec is now a full-run cache hit
        again = Runner(workers=1, base_dir=runner.runs_dir.parent).run(
            _spec(), warm_start=True)
        assert [r.cache for r in again.records] == ["hit"] * len(HORIZONS)
        assert again.hit_counts["hit"] == len(HORIZONS)

    def test_summarize_runs_shows_warm_starts(self, sweeps):
        from repro.exp import summarize_runs

        _cold, warm, _runner = sweeps
        text = summarize_runs(warm.records)
        assert f"{len(HORIZONS)} warm starts" in text


class TestCacheCounters:
    def test_note_and_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.hit_counts() == {"hit": 0, "warm": 0, "miss": 0}
        for kind in HIT_KINDS:
            cache.note(kind)
        assert cache.hit_counts() == {"hit": 1, "warm": 1, "miss": 1}

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown hit kind"):
            ResultCache(tmp_path).note("lukewarm")


class TestWarmRequestValidation:
    def test_warm_axes_participate_in_cache_key(self):
        from repro.exp.cache import request_key

        plain = BASE.replace(warm_cycles=0.0, warm_axes=())
        assert request_key(BASE, "v") != request_key(plain, "v")

    def test_warm_base_resets_axes_to_defaults(self):
        point = BASE.replace(run_cycles=HORIZONS[0])
        base = point.warm_base()
        assert base.run_cycles is None
        assert base.warm_cycles == BASE.warm_cycles
        # every point in the sweep collapses onto the same warm base
        assert base == BASE.replace(run_cycles=HORIZONS[1]).warm_base()

    def test_snapshot_roundtrip_keeps_warm_axes_hashable(self):
        from repro.exp.request import request_from_snapshot
        import json

        snap = json.loads(json.dumps(BASE.snapshot()))
        back = request_from_snapshot(snap)
        assert back.warm_axes == ("run_cycles",)
        hash(back)   # frozen dataclass must stay hashable

    def test_validation_errors(self):
        with pytest.raises(ConfigError, match="warm axis"):
            RunRequest(kind="smarco", warm_axes=("nope",)).validate()
        with pytest.raises(ConfigError, match="cannot warm-start"):
            RunRequest(kind="tcg", warm_cycles=10.0).validate()
        with pytest.raises(ConfigError, match="exceed warm_cycles"):
            RunRequest(kind="smarco", warm_cycles=100.0,
                       run_cycles=50.0).validate()
        with pytest.raises(ConfigError, match="run_cycles"):
            RunRequest(kind="smarco", run_cycles=-1.0).validate()
