"""Soak harness tests: deterministic generation, audited execution."""

import random

from repro.exp import RunRequest
from repro.exp.soak import SoakReport, random_request, run_soak


class TestRandomRequest:
    def test_deterministic_from_seed(self):
        a = [random_request(random.Random(7), i) for i in range(5)]
        b = [random_request(random.Random(7), i) for i in range(5)]
        assert [r.snapshot() for r in a] == [r.snapshot() for r in b]

    def test_requests_are_valid_and_varied(self):
        rng = random.Random(0)
        requests = [random_request(rng, i) for i in range(30)]
        for r in requests:
            assert isinstance(r, RunRequest)
            r.validate()                     # geometry/threads all legal
            assert r.kind == "smarco"
        assert len({r.smarco_config.sub_rings for r in requests}) > 1
        assert len({r.core_policy for r in requests}) > 1
        assert len({r.smarco_config.mact.threshold_cycles
                    for r in requests}) > 1

    def test_blocking_policy_respects_slot_limit(self):
        rng = random.Random(0)
        for i in range(200):
            r = random_request(rng, i)
            if r.core_policy == "blocking":
                assert r.threads_per_core <= 4


class TestSoakReport:
    def test_clean_report_is_ok(self):
        report = SoakReport(runs=3, clean_runs=3, total_checks=100)
        assert report.ok
        assert "all invariants held" in report.render()

    def test_violations_make_it_not_ok(self):
        report = SoakReport(
            runs=3, clean_runs=2, total_checks=100,
            violations=[("pt-001", {"checker": "mact_consistency",
                                    "component": "chip.subring0.mact",
                                    "time": 9.0, "message": "bad bitmap"})])
        assert not report.ok
        text = report.render()
        assert "VIOLATION" in text and "bad bitmap" in text


class TestRunSoak:
    def test_small_soak_is_clean(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        report = run_soak(runs=3, seed=1, base_dir=tmp_path, instrs=60)
        assert report.runs == 3
        assert report.ok, report.render()
        assert report.total_checks > 0
        # the env override did not leak out of the soak
        import os

        assert "REPRO_AUDIT" not in os.environ

    def test_soak_restores_existing_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "off")
        run_soak(runs=1, seed=2, base_dir=tmp_path, instrs=40)
        import os

        assert os.environ["REPRO_AUDIT"] == "off"

    def test_soak_reproducible(self, tmp_path):
        a = run_soak(runs=2, seed=9, base_dir=tmp_path / "a", instrs=40)
        b = run_soak(runs=2, seed=9, base_dir=tmp_path / "b", instrs=40)
        assert a.total_checks == b.total_checks
        assert a.clean_runs == b.clean_runs
