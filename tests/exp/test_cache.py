"""The content-addressed result cache.

The satellite requirement: same spec twice => second run is all cache
hits with bit-identical stats; a changed seed or config => miss.
"""

import pytest

from repro.config import smarco_scaled
from repro.exp import (
    ExperimentSpec,
    ResultCache,
    Runner,
    RunRequest,
    code_version,
    request_key,
)

FAST = RunRequest(kind="smarco", workload="kmp",
                  smarco_config=smarco_scaled(1, 4),
                  threads_per_core=4, instrs_per_thread=60)


class TestKeying:
    def test_same_request_same_key(self):
        assert request_key(FAST) == request_key(FAST.replace())

    def test_seed_changes_key(self):
        assert request_key(FAST) != request_key(FAST.replace(seed=1))

    def test_config_changes_key(self):
        other = FAST.replace(smarco_config=smarco_scaled(2, 4))
        assert request_key(FAST) != request_key(other)

    def test_code_version_changes_key(self):
        assert (request_key(FAST, "aaaa")
                != request_key(FAST, "bbbb"))

    def test_code_version_is_stable_per_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16


class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"result": {"x": 1.5}, "stats": {"a.count": 2}}
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, payload)
        assert key in cache
        assert cache.get(key) == payload
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_torn_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, {"ok": True})
        cache._path(key).write_text("{not json")
        assert cache.get(key) is None


class TestCachedSweeps:
    @pytest.fixture
    def spec(self):
        return ExperimentSpec.grid("cache-sweep", FAST,
                                   workload=["kmp", "wordcount"],
                                   seed=[0, 1])

    def test_second_run_all_hits_bit_identical(self, tmp_path, spec):
        runner = Runner(workers=1, base_dir=tmp_path)
        cold = runner.run(spec)
        warm = runner.run(spec)
        assert cold.misses == spec.n_points and cold.hits == 0
        assert warm.hits == spec.n_points and warm.misses == 0
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert a.stats == b.stats          # bit-identical stats
            assert a.result == b.result
            assert a.request == b.request

    def test_changed_seed_misses(self, tmp_path, spec):
        runner = Runner(workers=1, base_dir=tmp_path)
        runner.run(spec)
        shifted = ExperimentSpec.grid("cache-sweep", FAST,
                                      workload=["kmp", "wordcount"],
                                      seed=[2, 3])
        again = runner.run(shifted)
        assert again.hits == 0 and again.misses == shifted.n_points

    def test_changed_config_misses(self, tmp_path):
        runner = Runner(workers=1, base_dir=tmp_path)
        one = ExperimentSpec.grid("c", FAST, seed=[0])
        runner.run(one)
        bigger = ExperimentSpec.grid(
            "c", FAST.replace(smarco_config=smarco_scaled(2, 4)), seed=[0])
        assert runner.run(bigger).misses == 1

    def test_code_version_invalidates(self, tmp_path, spec):
        old = Runner(workers=1, base_dir=tmp_path, version="v-old")
        new = Runner(workers=1, base_dir=tmp_path, version="v-new")
        old.run(spec)
        assert old.run(spec).hits == spec.n_points
        assert new.run(spec).hits == 0

    def test_use_cache_false_always_simulates(self, tmp_path, spec):
        runner = Runner(workers=1, base_dir=tmp_path, use_cache=False)
        assert runner.run(spec).misses == spec.n_points
        assert runner.run(spec).misses == spec.n_points
