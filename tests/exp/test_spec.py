"""ExperimentSpec: declarative grid / explicit sweep expansion."""

import pytest

from repro.errors import ConfigError
from repro.exp import ExperimentSpec, RunRequest


class TestGrid:
    def test_cartesian_expansion_order(self):
        spec = ExperimentSpec.grid(
            "g", RunRequest(kind="tcg"),
            workload=["kmp", "wordcount"], seed=[0, 1, 2])
        points = spec.points()
        assert spec.n_points == len(points) == 6
        # first axis is the outer loop, second the inner
        combos = [(p.request.workload, p.request.seed) for p in points]
        assert combos == [("kmp", 0), ("kmp", 1), ("kmp", 2),
                          ("wordcount", 0), ("wordcount", 1), ("wordcount", 2)]
        assert [p.index for p in points] == list(range(6))

    def test_base_fields_survive(self):
        base = RunRequest(kind="tcg", instrs_per_thread=123, mem_latency=99.0)
        spec = ExperimentSpec.grid("g", base, seed=[0, 1])
        for point in spec.points():
            assert point.request.instrs_per_thread == 123
            assert point.request.mem_latency == 99.0

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentSpec.grid("g", RunRequest(), voltage=[1, 2])

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentSpec.grid("g", RunRequest(), seed=[])

    def test_nameless_spec_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentSpec(name="")

    def test_points_validate_requests(self):
        spec = ExperimentSpec.grid("g", RunRequest(), threads_per_core=[0])
        with pytest.raises(ConfigError):
            spec.points()


class TestExplicit:
    def test_explicit_overrides_grid(self):
        requests = [RunRequest(kind="tcg", seed=s) for s in (5, 6, 7)]
        spec = ExperimentSpec.explicit("e", requests)
        points = spec.points()
        assert [p.request.seed for p in points] == [5, 6, 7]
        assert spec.n_points == 3

    def test_labels_are_unique(self):
        requests = [RunRequest(kind="tcg")] * 4
        labels = [p.label for p in ExperimentSpec.explicit("e", requests).points()]
        assert len(set(labels)) == 4
