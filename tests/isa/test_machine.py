"""Functional machine tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineError
from repro.isa import FlatMemory, Machine, Op, OpClass, assemble


def run(src, setup=None, max_instructions=1_000_000):
    machine = Machine(assemble(src))
    if setup:
        setup(machine)
    machine.run(max_instructions)
    return machine


class TestAlu:
    def test_add_sub(self):
        m = run("addi r1, r0, 7\naddi r2, r0, 5\nadd r3, r1, r2\nsub r4, r1, r2\nhalt")
        assert m.read_reg(3) == 12 and m.read_reg(4) == 2

    def test_r0_is_hardwired_zero(self):
        m = run("addi r0, r0, 99\nadd r1, r0, r0\nhalt")
        assert m.read_reg(0) == 0 and m.read_reg(1) == 0

    def test_logic_ops(self):
        m = run(
            "addi r1, r0, 12\naddi r2, r0, 10\n"
            "and r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2\nhalt"
        )
        assert m.read_reg(3) == 8 and m.read_reg(4) == 14 and m.read_reg(5) == 6

    def test_shifts(self):
        m = run("addi r1, r0, -8\nslli r2, r1, 1\nsrai_placeholder: srl r3, r1, r0\nsra r4, r1, r0\nhalt")
        assert m.read_reg(2) == -16
        assert m.read_reg(4) == -8            # arithmetic shift by 0 keeps sign

    def test_slt_signed_unsigned(self):
        m = run("addi r1, r0, -1\naddi r2, r0, 1\nslt r3, r1, r2\nsltu r4, r1, r2\nhalt")
        assert m.read_reg(3) == 1             # -1 < 1 signed
        assert m.read_reg(4) == 0             # 0xFFF..F > 1 unsigned

    def test_mul_div_rem(self):
        m = run(
            "addi r1, r0, -7\naddi r2, r0, 2\n"
            "mul r3, r1, r2\ndiv r4, r1, r2\nrem r5, r1, r2\nhalt"
        )
        assert m.read_reg(3) == -14
        assert m.read_reg(4) == -3            # truncating division
        assert m.read_reg(5) == -1

    def test_div_by_zero_is_minus_one(self):
        m = run("addi r1, r0, 5\ndiv r2, r1, r0\nrem r3, r1, r0\nhalt")
        assert m.read_reg(2) == -1 and m.read_reg(3) == 5

    def test_lui(self):
        m = run("lui r1, 3\nhalt")
        assert m.read_reg(1) == 3 << 12


class TestMemory:
    def test_store_load_round_trip(self):
        m = run("addi r1, r0, 64\naddi r2, r0, -5\nsd r2, 0(r1)\nld r3, 0(r1)\nhalt")
        assert m.read_reg(3) == -5

    def test_byte_sign_extension(self):
        def setup(machine):
            machine.memory.write(100, 0x80, 1)
        m = run("addi r1, r0, 100\nlb r2, 0(r1)\nhalt", setup)
        assert m.read_reg(2) == -128

    def test_sub_word_sizes(self):
        m = run(
            "addi r1, r0, 200\naddi r2, r0, 0x1234\n"
            "sh r2, 0(r1)\nlh r3, 0(r1)\nlb r4, 1(r1)\nhalt"
        )
        assert m.read_reg(3) == 0x1234
        assert m.read_reg(4) == 0x12          # little-endian high byte

    def test_negative_address_traps(self):
        with pytest.raises(MachineError):
            run("addi r1, r0, -8\nld r2, 0(r1)\nhalt")


class TestControlFlow:
    def test_loop_counts(self):
        m = run(
            """
            addi r1, r0, 10
            addi r2, r0, 0
        loop:
            beq r2, r1, done
            addi r2, r2, 1
            jal r0, loop
        done:
            halt
            """
        )
        assert m.read_reg(2) == 10

    def test_jalr_returns(self):
        m = run(
            """
            jal r1, func        # call
            addi r2, r2, 100    # executed after return
            halt
        func:
            addi r2, r0, 1
            jalr r0, r1, 0
            """
        )
        assert m.read_reg(2) == 101

    def test_branch_record_taken_flag(self):
        machine = Machine(assemble("beq r0, r0, 2\nnop\nhalt"))
        rec = machine.step()
        assert rec.op_class is OpClass.BRANCH and rec.taken
        assert machine.pc == 2

    def test_pc_out_of_range_traps(self):
        machine = Machine(assemble("jal r0, 99"))
        machine.step()
        with pytest.raises(MachineError):
            machine.step()

    def test_runaway_budget(self):
        with pytest.raises(MachineError, match="budget"):
            run("loop: jal r0, loop", max_instructions=100)


class TestTraceRecords:
    def test_load_record_has_addr_and_size(self):
        machine = Machine(assemble("addi r1, r0, 40\nlw r2, 4(r1)\nhalt"))
        machine.step()
        rec = machine.step()
        assert rec.op is Op.LW and rec.addr == 44 and rec.size == 4

    def test_on_retire_callback_sees_everything(self):
        seen = []
        machine = Machine(assemble("addi r1, r0, 1\nhalt"), on_retire=seen.append)
        machine.run()
        assert [r.op for r in seen] == [Op.ADDI, Op.HALT]

    def test_trace_generator(self):
        machine = Machine(assemble("nop\nnop\nhalt"))
        ops = [r.op for r in machine.trace()]
        assert ops == [Op.NOP, Op.NOP, Op.HALT]
        assert machine.halted


class TestFlatMemory:
    def test_little_endian(self):
        mem = FlatMemory()
        mem.write(0, 0x0102030405060708, 8)
        assert mem.read(0, 1) == 0x08
        assert mem.read(7, 1) == 0x01

    def test_cross_page_access(self):
        mem = FlatMemory()
        addr = FlatMemory.PAGE - 4
        mem.write(addr, 0xDEADBEEFCAFEF00D, 8)
        assert mem.read(addr, 8) == 0xDEADBEEFCAFEF00D
        assert mem.touched_pages == 2

    def test_bytes_interface(self):
        mem = FlatMemory()
        mem.write_bytes(10, b"hello")
        assert mem.read_bytes(10, 5) == b"hello"

    @given(st.integers(0, 2**64 - 1), st.integers(0, 10_000))
    def test_round_trip_any_word(self, value, addr):
        mem = FlatMemory()
        mem.write(addr, value, 8)
        assert mem.read(addr, 8) == value
