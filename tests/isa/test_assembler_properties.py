"""Property-based assembler tests: generated programs assemble, list,
and execute without surprises."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Machine, NUM_REGISTERS, Op, assemble
from repro.isa.instructions import OP_INFO, OpClass

_REG = st.integers(0, NUM_REGISTERS - 1)
_IMM = st.integers(-2048, 2047)

_ALU_RR = [op for op, info in OP_INFO.items()
           if info.op_class in (OpClass.ALU, OpClass.MUL)
           and op not in (Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI,
                          Op.SLLI, Op.SRLI, Op.LUI)]
_ALU_RI = [Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI, Op.SLLI, Op.SRLI]
_LOADS = [Op.LB, Op.LH, Op.LW, Op.LD]
_STORES = [Op.SB, Op.SH, Op.SW, Op.SD]


def _line(op, rd, rs1, rs2, imm):
    m = op.value
    if op in _ALU_RI:
        return f"{m} r{rd}, r{rs1}, {imm}"
    if op in _LOADS:
        return f"{m} r{rd}, {abs(imm)}(r{rs1})"
    if op in _STORES:
        return f"{m} r{rs2}, {abs(imm)}(r{rs1})"
    if op is Op.LUI:
        return f"{m} r{rd}, {abs(imm)}"
    return f"{m} r{rd}, r{rs1}, r{rs2}"


_INSTR = st.builds(
    _line,
    st.sampled_from(_ALU_RR + _ALU_RI + _LOADS + _STORES + [Op.LUI]),
    _REG, _REG, _REG, _IMM,
)


@given(st.lists(_INSTR, min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_generated_programs_assemble_and_list(lines):
    source = "\n".join(lines) + "\nhalt"
    program = assemble(source)
    assert len(program) == len(lines) + 1
    listing = program.disassemble()
    assert len(listing.splitlines()) >= len(lines)


@given(st.lists(_INSTR, min_size=1, max_size=25))
@settings(max_examples=40, deadline=None)
def test_generated_straightline_programs_execute(lines):
    """Any straight-line program either halts after retiring exactly its
    length, or traps cleanly on a computed negative address — it never
    runs away or corrupts r0."""
    from repro.errors import MachineError

    source = "\n".join(lines) + "\nhalt"
    machine = Machine(assemble(source))
    # start base registers at a safe positive address; generated ALU ops
    # may still drive them negative, which must trap, not corrupt
    for reg in range(1, NUM_REGISTERS):
        machine.write_reg(reg, 1 << 16)
    try:
        machine.run()
    except MachineError as err:
        assert "negative address" in str(err)
        assert machine.retired <= len(lines)
    else:
        assert machine.halted
        assert machine.retired == len(lines) + 1
    assert machine.read_reg(0) == 0           # r0 stayed hardwired


@given(st.integers(1, 30), st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_loop_programs_terminate_with_exact_trip_count(n, seed):
    source = f"""
        addi r1, r0, {n}
        addi r2, r0, 0
    loop:
        beq r2, r1, done
        addi r2, r2, 1
        jal r0, loop
    done:
        halt
    """
    machine = Machine(assemble(source))
    machine.run()
    assert machine.read_reg(2) == n
    # 2 setup + 3 per iteration + final beq + halt
    assert machine.retired == 2 + 3 * n + 2
