"""End-to-end tests of the kernel library against Python reference results."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Machine
from repro.isa.programs import (
    dot_product_program,
    fibonacci_program,
    histogram_program,
    kmp_failure_table,
    kmp_search_program,
    load_words,
    memcpy_program,
    read_words,
    strchr_count_program,
    sum_array_program,
)


def test_sum_array():
    machine = Machine(sum_array_program())
    values = [3, -1, 10, 7]
    load_words(machine.memory, 1000, values)
    machine.write_reg(1, 1000)
    machine.write_reg(2, len(values))
    machine.run()
    assert machine.read_reg(3) == sum(values)


@given(st.lists(st.integers(-2**31, 2**31), max_size=50))
@settings(max_examples=25, deadline=None)
def test_sum_array_property(values):
    machine = Machine(sum_array_program())
    load_words(machine.memory, 4096, values)
    machine.write_reg(1, 4096)
    machine.write_reg(2, len(values))
    machine.run()
    assert machine.read_reg(3) == sum(values)


def test_memcpy():
    machine = Machine(memcpy_program())
    machine.memory.write_bytes(100, b"smarco-hpca-2018")
    machine.write_reg(1, 100)
    machine.write_reg(2, 500)
    machine.write_reg(3, 16)
    machine.run()
    assert machine.memory.read_bytes(500, 16) == b"smarco-hpca-2018"


def test_histogram_matches_python_counts():
    data = bytes(random.Random(7).randrange(256) for _ in range(300))
    machine = Machine(histogram_program())
    machine.memory.write_bytes(0x1000, data)
    machine.write_reg(1, 0x1000)
    machine.write_reg(2, len(data))
    machine.write_reg(3, 0x8000)
    machine.run()
    counts = read_words(machine.memory, 0x8000, 256)
    for byte in range(256):
        assert counts[byte] == data.count(bytes([byte]))


def _kmp_count(text: bytes, pattern: bytes) -> int:
    """Overlapping-match count via the machine."""
    machine = Machine(kmp_search_program())
    machine.memory.write_bytes(0x1000, text)
    machine.memory.write_bytes(0x4000, pattern)
    load_words(machine.memory, 0x5000, kmp_failure_table(pattern))
    machine.write_reg(1, 0x1000)
    machine.write_reg(2, len(text))
    machine.write_reg(3, 0x4000)
    machine.write_reg(4, len(pattern))
    machine.write_reg(5, 0x5000)
    machine.run()
    return machine.read_reg(10)


def _ref_count(text: bytes, pattern: bytes) -> int:
    count = start = 0
    while True:
        idx = text.find(pattern, start)
        if idx < 0:
            return count
        count += 1
        start = idx + 1          # overlapping matches


def test_kmp_simple():
    assert _kmp_count(b"abababa", b"aba") == 3


def test_kmp_no_match():
    assert _kmp_count(b"aaaa", b"b") == 0


def test_kmp_repetitive_pattern():
    assert _kmp_count(b"aaaaaa", b"aa") == 5


@given(
    st.binary(min_size=0, max_size=80).map(lambda b: bytes(x % 3 for x in b)),
    st.binary(min_size=1, max_size=4).map(lambda b: bytes(x % 3 for x in b)),
)
@settings(max_examples=30, deadline=None)
def test_kmp_matches_reference(text, pattern):
    assert _kmp_count(text, pattern) == _ref_count(text, pattern)


def test_kmp_failure_table_reference():
    assert kmp_failure_table(b"ababaca") == [0, 0, 1, 2, 3, 0, 1]
    assert kmp_failure_table(b"aaaa") == [0, 1, 2, 3]


def test_dot_product():
    machine = Machine(dot_product_program())
    xs, ys = [1, 2, 3], [4, -5, 6]
    load_words(machine.memory, 0x100, xs)
    load_words(machine.memory, 0x800, ys)
    machine.write_reg(1, 0x100)
    machine.write_reg(2, 0x800)
    machine.write_reg(3, 3)
    machine.run()
    assert machine.read_reg(10) == sum(a * b for a, b in zip(xs, ys))


def test_strchr_count():
    machine = Machine(strchr_count_program())
    machine.memory.write_bytes(0x40, b"mississippi")
    machine.write_reg(1, 0x40)
    machine.write_reg(2, 11)
    machine.write_reg(3, ord("s"))
    machine.run()
    assert machine.read_reg(10) == 4


@pytest.mark.parametrize("n,expected", [(0, 0), (1, 1), (2, 1), (10, 55)])
def test_fibonacci(n, expected):
    machine = Machine(fibonacci_program())
    machine.write_reg(1, n)
    machine.run()
    assert machine.read_reg(10) == expected
