"""Assembler unit tests."""

import pytest

from repro.errors import AssemblerError
from repro.isa import Op, OpClass, assemble


def test_basic_alu_encoding():
    prog = assemble("add r1, r2, r3")
    instr = prog[0]
    assert instr.op is Op.ADD
    assert (instr.rd, instr.rs1, instr.rs2) == (1, 2, 3)


def test_immediate_encoding():
    prog = assemble("addi r5, r6, -12")
    instr = prog[0]
    assert instr.op is Op.ADDI and instr.imm == -12


def test_hex_immediate():
    prog = assemble("addi r1, r0, 0xFF")
    assert prog[0].imm == 255


def test_load_store_operand_form():
    prog = assemble("lw r2, 8(r1)\nsw r2, -4(r3)")
    ld, st = prog.instructions
    assert ld.op is Op.LW and ld.rd == 2 and ld.rs1 == 1 and ld.imm == 8
    assert st.op is Op.SW and st.rs2 == 2 and st.rs1 == 3 and st.imm == -4
    assert ld.op_class is OpClass.LOAD and st.op_class is OpClass.STORE
    assert ld.info.mem_bytes == 4


def test_label_resolution_forward_and_backward():
    prog = assemble(
        """
    start:
        beq r0, r0, end
        jal r0, start
    end:
        halt
        """
    )
    assert prog.labels == {"start": 0, "end": 2}
    assert prog[0].imm == 2 and prog[0].label == "end"
    assert prog[1].imm == 0 and prog[1].label == "start"


def test_numeric_branch_target():
    prog = assemble("beq r1, r2, 5")
    assert prog[0].imm == 5 and prog[0].label is None


def test_comments_and_blank_lines_ignored():
    prog = assemble(
        """
        # full-line comment
        nop   ; trailing comment
        nop   # another style

        halt
        """
    )
    assert len(prog) == 3


def test_label_on_same_line_as_instruction():
    prog = assemble("loop: addi r1, r1, 1\njal r0, loop")
    assert prog.labels["loop"] == 0
    assert len(prog) == 2


def test_unknown_mnemonic():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("frobnicate r1, r2, r3")


def test_undefined_label():
    with pytest.raises(AssemblerError, match="undefined label"):
        assemble("jal r0, nowhere")


def test_duplicate_label():
    with pytest.raises(AssemblerError, match="duplicate label"):
        assemble("a: nop\na: nop")


def test_bad_register():
    with pytest.raises(AssemblerError):
        assemble("add r1, r99, r2")
    with pytest.raises(AssemblerError):
        assemble("add r1, x2, r3")


def test_wrong_operand_count():
    with pytest.raises(AssemblerError, match="expects"):
        assemble("add r1, r2")


def test_bad_memory_operand():
    with pytest.raises(AssemblerError, match="memory operand"):
        assemble("lw r1, r2")


def test_disassemble_round_trip_text():
    src = """
    loop:
        lw r2, 0(r1)
        addi r1, r1, 4
        bne r1, r4, loop
        halt
    """
    listing = assemble(src).disassemble()
    assert "loop:" in listing
    assert "lw r2, 0(r1)" in listing
    assert "bne r1, r4, loop" in listing


def test_lui():
    prog = assemble("lui r1, 5")
    assert prog[0].op is Op.LUI and prog[0].imm == 5
