"""Property-based integration tests on the NoC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc import HierarchicalRingNoC, NodeId, Packet, PacketKind
from repro.sim import Simulator


def node_strategy(sub_rings, cores, mcs):
    core_nodes = st.builds(
        NodeId,
        kind=st.just("core"),
        ring=st.integers(0, sub_rings - 1),
        index=st.integers(0, cores - 1),
    )
    device_nodes = st.one_of(
        st.builds(NodeId, kind=st.just("mc"), ring=st.just(0),
                  index=st.integers(0, mcs - 1)),
        st.just(NodeId("sched")),
        st.just(NodeId("io")),
    )
    return st.one_of(core_nodes, device_nodes)


SUB_RINGS, CORES, MCS = 3, 4, 2
NODES = node_strategy(SUB_RINGS, CORES, MCS)


@given(st.lists(st.tuples(NODES, NODES, st.integers(1, 64)),
                min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_every_packet_delivered_exactly_once(routes):
    """Any mix of endpoints and sizes is delivered exactly once, with
    non-negative latency, and the simulation drains completely."""
    sim = Simulator()
    noc = HierarchicalRingNoC(sim, SUB_RINGS, CORES, MCS)
    packets = []
    for src, dst, size in routes:
        if src == dst:
            continue
        pkt = Packet(src=src, dst=dst, size_bytes=size,
                     kind=PacketKind.MEM_READ)
        packets.append(pkt)
        noc.send(pkt)
    sim.run()
    assert sim.pending() == 0
    for pkt in packets:
        assert pkt.delivered_at is not None
        assert pkt.latency >= 0
    assert noc.delivered.value == len(packets)


@given(st.tuples(NODES, NODES, st.integers(1, 32)))
@settings(max_examples=40, deadline=None)
def test_latency_lower_bound_is_physical(route):
    """A lone packet's latency is at least its hop count (every hop costs
    router + link + transmit time)."""
    src, dst, size = route
    if src == dst:
        return
    sim = Simulator()
    noc = HierarchicalRingNoC(sim, SUB_RINGS, CORES, MCS)
    pkt = Packet(src=src, dst=dst, size_bytes=size, kind=PacketKind.MEM_READ)
    noc.send(pkt)
    sim.run()
    assert pkt.latency >= pkt.hops       # >= 1 cycle per hop, uncongested


@given(st.integers(0, SUB_RINGS - 1), st.integers(0, CORES - 1),
       st.integers(0, SUB_RINGS - 1), st.integers(0, CORES - 1))
@settings(max_examples=40, deadline=None)
def test_local_traffic_never_touches_main_ring(r1, i1, r2, i2):
    if r1 != r2 or i1 == i2:
        return
    sim = Simulator()
    noc = HierarchicalRingNoC(sim, SUB_RINGS, CORES, MCS)
    pkt = Packet(src=NodeId("core", r1, i1), dst=NodeId("core", r2, i2),
                 size_bytes=8, kind=PacketKind.MEM_READ)
    noc.send(pkt)
    sim.run()
    assert pkt.delivered_at is not None
    assert noc.main_ring.total_bytes() == 0


@given(st.lists(st.tuples(NODES, NODES, st.integers(1, 64)),
                min_size=2, max_size=30))
@settings(max_examples=20, deadline=None)
def test_byte_accounting_consistent(routes):
    """Total link bytes moved is at least (size x hops) for every packet
    (each hop transmits the whole packet once)."""
    sim = Simulator()
    noc = HierarchicalRingNoC(sim, SUB_RINGS, CORES, MCS)
    packets = []
    for src, dst, size in routes:
        if src == dst:
            continue
        pkt = Packet(src=src, dst=dst, size_bytes=size,
                     kind=PacketKind.MEM_READ)
        packets.append(pkt)
        noc.send(pkt)
    sim.run()
    expected = sum(p.size_bytes * p.hops for p in packets)
    assert noc.total_bytes() == expected
