"""Whole-chip audit-mode integration tests.

The two contracts this file pins down:

* audited fixed-seed runs across every kind/policy/feature produce zero
  violations (the checkers hold on the real model);
* an audits-off run is bit-identical to an audits-on run of the same
  request (the layer observes, it never perturbs).
"""

import dataclasses

import pytest

from repro.chip.run import execute
from repro.config import AUDIT_ENV, AuditConfig, smarco_scaled
from repro.errors import AuditError
from repro.exp import RunRequest


AUDIT_ON = AuditConfig(enabled=True, fail_fast=True)


def smarco_request(**overrides):
    config = overrides.pop("config", None)
    if config is None:
        config = dataclasses.replace(smarco_scaled(2, 4),
                                     trace_sample_rate=1.0)
    defaults = dict(kind="smarco", workload="kmeans", seed=11,
                    smarco_config=config, threads_per_core=4,
                    instrs_per_thread=120)
    defaults.update(overrides)
    return RunRequest(**defaults)


class TestAuditedRunsAreClean:
    @pytest.mark.parametrize("policy", ["inpair", "blocking", "coarse"])
    def test_policies(self, policy):
        tpc = 4 if policy == "blocking" else 8
        outcome = execute(smarco_request(core_policy=policy,
                                         threads_per_core=tpc),
                          audit=AUDIT_ON)
        assert outcome.audit["clean"]
        # every checker actually fired
        for checker in ("request_conservation", "link_conservation",
                        "mact_consistency", "thread_fsm", "trace_tiling"):
            assert outcome.audit["checks"].get(checker, 0) > 0, checker

    def test_realtime_direct_path(self):
        outcome = execute(smarco_request(workload="search", seed=5,
                                         realtime_fraction=0.3),
                          audit=AUDIT_ON)
        assert outcome.audit["clean"]

    def test_mact_disabled(self):
        config = dataclasses.replace(
            smarco_scaled(1, 4),
            mact=dataclasses.replace(smarco_scaled(1, 4).mact, enabled=False),
            trace_sample_rate=1.0)
        outcome = execute(smarco_request(config=config), audit=AUDIT_ON)
        assert outcome.audit["clean"]

    def test_tcg_kind(self):
        request = RunRequest(kind="tcg", workload="kmp", seed=0,
                             threads_per_core=8, instrs_per_thread=200)
        outcome = execute(request, audit=AUDIT_ON)
        assert outcome.audit["clean"]
        assert outcome.audit["checks"]["thread_fsm"] > 0

    def test_compare_kind_attaches_both_reports(self):
        request = RunRequest(kind="compare", workload="wordcount", seed=0,
                             smarco_config=smarco_scaled(1, 4),
                             instrs_per_thread=100)
        outcome = execute(request, audit=AUDIT_ON)
        assert outcome.audit["smarco"]["clean"]
        assert outcome.audit["xeon"]["clean"]


class TestBitIdentity:
    def test_audits_off_matches_audits_on(self):
        request = smarco_request()
        off = execute(request, audit=AuditConfig(enabled=False))
        on = execute(request, audit=AUDIT_ON)
        assert off.result.to_dict() == on.result.to_dict()
        assert off.stats == on.stats
        assert off.audit is None and on.audit is not None

    def test_collect_mode_also_identical(self):
        request = smarco_request(seed=23, workload="terasort")
        off = execute(request)
        collect = execute(request,
                          audit=AuditConfig(enabled=True, fail_fast=False))
        assert off.result.to_dict() == collect.result.to_dict()
        assert off.stats == collect.stats


class TestEnvPlumbing:
    def test_env_enables_auditing(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "1")
        outcome = execute(smarco_request(instrs_per_thread=60))
        assert outcome.audit is not None and outcome.audit["clean"]

    def test_env_off_leaves_outcome_unaudited(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV, raising=False)
        outcome = execute(smarco_request(instrs_per_thread=60))
        assert outcome.audit is None

    def test_explicit_config_overrides_env(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "1")
        outcome = execute(smarco_request(instrs_per_thread=60),
                          audit=AuditConfig(enabled=False))
        assert outcome.audit is None


class TestFailLoudly:
    def test_injected_corruption_raises_audit_error(self):
        """A deliberately broken model must not pass a fail-fast audit:
        completing a request the chip never issued trips conservation."""
        from repro.mem.request import MemRequest
        from repro.sim import Auditor

        auditor = Auditor(AUDIT_ON)
        ghost = MemRequest(addr=0x100, size=4, is_write=False)
        with pytest.raises(AuditError):
            auditor.request_completed(ghost, 10.0)

    def test_outcome_roundtrips_audit_field(self):
        outcome = execute(smarco_request(instrs_per_thread=60),
                          audit=AUDIT_ON)
        from repro.chip.run import RunOutcome

        data = outcome.to_dict()
        back = RunOutcome.from_dict(data)
        assert back.audit == outcome.audit
        # and pre-audit cache files still load
        data.pop("audit")
        legacy = RunOutcome.from_dict(data)
        assert legacy.audit is None
