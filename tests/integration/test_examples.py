"""Every shipped example must run end to end (guards against bitrot)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_all_examples_discovered():
    assert len(EXAMPLES) >= 6, EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_quickstart_reports_speedup(capsys):
    _load("quickstart.py").main()
    out = capsys.readouterr().out
    assert "speedup over Xeon" in out


def test_staged_pipeline_stage_order(capsys):
    _load("staged_pipeline.py").main()
    out = capsys.readouterr().out
    for stage in ("DMA staging", "map execution", "shuffle", "reduce"):
        assert stage in out
