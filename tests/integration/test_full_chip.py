"""Cross-subsystem integration tests on the assembled chip."""

import pytest

from repro.chip import SmarCoChip
from repro.config import smarco_default, smarco_scaled
from repro.workloads import HTC_PROFILES, get_profile


class TestRequestConservation:
    """Every memory request a core emits must complete exactly once."""

    def test_all_requests_complete(self):
        chip = SmarCoChip(smarco_scaled(2, 8), seed=11)
        issued = []
        for cid in range(len(chip.cores)):
            original = chip.cores[cid].port._submit

            def spy(request, orig=original):
                issued.append(request)
                orig(request)

            chip.cores[cid].port._submit = spy
        chip.load_profile(get_profile("kmp"), threads_per_core=8,
                          instrs_per_thread=200)
        result = chip.run()
        assert result.cores_done == result.total_cores
        assert issued, "expected memory traffic"
        incomplete = [r for r in issued if r.finish_time is None]
        assert not incomplete
        # latencies are physical: positive, and far below the run length
        for request in issued:
            assert request.latency > 0
            assert request.latency < result.cycles

    def test_mact_request_counts_match_core_emissions(self):
        chip = SmarCoChip(smarco_scaled(2, 8), seed=12)
        chip.load_profile(get_profile("terasort"), threads_per_core=8,
                          instrs_per_thread=200)
        chip.run()
        emitted = sum(c.uncached_accesses.value for c in chip.cores)
        # every uncached access reaches some MACT (cached fills and
        # writebacks arrive on top of these)
        collected = sum(m.requests_in.value for m in chip.macts)
        assert collected >= emitted


class TestDeterminismAndIsolation:
    def test_full_run_reproducible(self):
        def signature(seed):
            chip = SmarCoChip(smarco_scaled(2, 4), seed=seed)
            chip.load_profile(get_profile("rnc"), 8, 150)
            result = chip.run()
            return (result.cycles, result.instructions, result.mem_requests,
                    round(result.mean_request_latency, 6))

        assert signature(5) == signature(5)
        assert signature(5) != signature(6)

    def test_workloads_produce_distinct_behaviour(self):
        cycles = {}
        for wl in ("kmp", "search"):
            chip = SmarCoChip(smarco_scaled(1, 8), seed=3)
            chip.load_profile(get_profile(wl), 8, 200)
            cycles[wl] = chip.run().cycles
        assert cycles["kmp"] != cycles["search"]


class TestStatsConsistency:
    def test_noc_bytes_match_traffic_direction(self):
        chip = SmarCoChip(smarco_scaled(2, 8), seed=7)
        chip.load_profile(get_profile("wordcount"), 8, 200)
        chip.run()
        # memory traffic must touch both sub-rings and the main ring
        assert chip.noc.main_ring.total_bytes() > 0
        for ring in chip.noc.sub_ring_nets:
            assert ring.total_bytes() > 0

    def test_dram_bytes_at_least_batch_payloads(self):
        chip = SmarCoChip(smarco_scaled(2, 8), seed=7)
        chip.load_profile(get_profile("kmp"), 8, 200)
        result = chip.run()
        assert chip.memory.total_bytes > 0
        assert chip.memory.total_requests == result.mem_transactions

    def test_utilizations_bounded(self):
        chip = SmarCoChip(smarco_scaled(2, 8), seed=7)
        chip.load_profile(get_profile("kmeans"), 8, 200)
        result = chip.run()
        assert 0 <= result.noc_bandwidth_utilization <= 1
        assert 0 <= result.utilization <= 1
        assert 0 <= chip.memory.bandwidth_utilization(result.cycles) <= 1


@pytest.mark.slow
class TestFullGeometry:
    def test_paper_256_core_chip_smoke(self):
        """The full 16x16 geometry runs end to end (short streams)."""
        chip = SmarCoChip(smarco_default(), seed=1)
        chip.load_profile(get_profile("wordcount"), threads_per_core=4,
                          instrs_per_thread=60)
        result = chip.run()
        assert result.total_cores == 256
        assert result.cores_done == 256
        assert result.instructions == 256 * 4 * 60
        assert result.ipc > 1.0          # many cores make progress at once
