"""End-to-end latency attribution from hop-stamped transactions.

The acceptance properties of the tracing refactor:

* the advance-chain hops of every traced request tile its lifetime, so
  per-stage durations reconcile exactly with the end-to-end latency;
* the breakdown flows through the normal stats path (registry dump →
  ``RunOutcome.stats`` → component-nested ``stats_tree``);
* ``trace_sample_rate=0`` (the default) is bit-identical to a traced run
  of the same seed — stamping observes timing, it never alters it.
"""

import dataclasses

import pytest

from repro.analysis import rows_from_stats
from repro.chip import SmarCoChip, execute
from repro.config import smarco_scaled
from repro.exp.request import RunRequest
from repro.sim.stats import nest_flat_stats
from repro.workloads import get_profile

#: hops stamped outside the issue→completion chain (post-completion
#: resume wait, DMA legs, cache-walk attribution) — excluded when
#: checking that the chain tiles the request lifetime
OUT_OF_CHAIN = {"resume", "dma_queue", "dma_xfer", "cache"}


def traced_chip(rate=1.0, seed=7, realtime_fraction=0.0, workload="kmp",
                instrs=150):
    cfg = dataclasses.replace(smarco_scaled(2, 4), trace_sample_rate=rate)
    chip = SmarCoChip(cfg, seed=seed, realtime_fraction=realtime_fraction)
    chip.load_profile(get_profile(workload), threads_per_core=8,
                      instrs_per_thread=instrs)
    return chip


class TestHopChainReconciliation:
    def test_every_traced_request_tiles_its_lifetime(self):
        """The load-bearing invariant: for every completed traced request
        the chained hops start at issue, are contiguous, end at finish,
        and their durations sum to the latency."""
        chip = traced_chip(rate=1.0, realtime_fraction=0.1)
        chip.breakdown.keep_traces = True
        chip.run()
        recorded = chip.breakdown.requests
        assert len(recorded) > 100, "expected substantial traced traffic"
        for req in recorded:
            flight = [h for h in req.trace.hops
                      if h.stage not in OUT_OF_CHAIN]
            assert flight, f"{req!r} has no chained hops"
            assert flight[0].enter == req.issue_time
            for prev, nxt in zip(flight, flight[1:]):
                assert prev.exit == nxt.enter, (
                    f"{req!r}: gap between {prev.stage} and {nxt.stage}")
            assert flight[-1].exit == req.finish_time
            total = sum(h.duration for h in flight)
            assert total == pytest.approx(req.latency)

    def test_issue_stage_present_on_every_trace(self):
        chip = traced_chip(rate=1.0)
        chip.breakdown.keep_traces = True
        chip.run()
        for req in chip.breakdown.requests:
            assert req.trace.hops[0].stage == "issue"
            assert req.trace.hops[0].component.startswith("chip.")

    def test_aggregate_hop_time_matches_aggregate_latency(self):
        chip = traced_chip(rate=1.0, realtime_fraction=0.1)
        chip.breakdown.keep_traces = True
        chip.run()
        recorded = chip.breakdown.requests
        latency_sum = sum(r.latency for r in recorded)
        hop_sum = sum(h.duration for r in recorded
                      for h in r.trace.hops if h.stage not in OUT_OF_CHAIN)
        assert hop_sum == pytest.approx(latency_sum)

    def test_breakdown_rows_cover_the_expected_stages(self):
        chip = traced_chip(rate=1.0)
        chip.run()
        rows = chip.breakdown.rows()
        stages = {r.stage for r in rows}
        # memory traffic must at minimum issue, be collected, ride the
        # NoC and hit DRAM
        assert {"issue", "collect", "router", "link_xfer", "dram"} <= stages
        for row in rows:
            assert row.component.startswith("chip")
            assert row.count > 0 and row.mean >= 0.0


class TestSamplingBehaviour:
    def test_rate_zero_records_nothing(self):
        chip = traced_chip(rate=0.0)
        chip.run()
        assert chip.breakdown.recorded == 0
        assert not any(".hop." in k for k in chip.registry.dump())

    def test_fractional_rate_records_a_subset(self):
        full = traced_chip(rate=1.0)
        full.run()
        half = traced_chip(rate=0.5)
        half.run()
        assert 0 < half.breakdown.recorded < full.breakdown.recorded

    def test_tracing_is_timing_invisible(self):
        """Bit-identity: the traced run's results match the untraced run
        of the same seed exactly — stamping never perturbs event order."""
        def outcome(rate):
            cfg = dataclasses.replace(smarco_scaled(2, 4),
                                      trace_sample_rate=rate)
            request = RunRequest(kind="smarco", workload="kmp", seed=7,
                                 smarco_config=cfg, threads_per_core=8,
                                 instrs_per_thread=150,
                                 realtime_fraction=0.1)
            return execute(request)

        untraced = outcome(0.0)
        traced = outcome(1.0)
        assert untraced.result.to_dict() == traced.result.to_dict()


class TestStatsFlow:
    def test_breakdown_reaches_run_outcome_and_nests_by_component(self):
        cfg = dataclasses.replace(smarco_scaled(2, 4), trace_sample_rate=1.0)
        request = RunRequest(kind="smarco", workload="kmp", seed=3,
                             smarco_config=cfg, threads_per_core=8,
                             instrs_per_thread=120)
        outcome = execute(request)
        rows = rows_from_stats(outcome.stats)
        assert rows, "breakdown stats missing from RunOutcome.stats"
        # round-trip: flat keys recover (component, stage, count, mean)
        for row in rows:
            base = f"{row.component}.hop.{row.stage}"
            assert outcome.stats[f"{base}.count"] == row.count
            assert outcome.stats[f"{base}.mean"] == pytest.approx(row.mean)
        # the same keys nest under their component's subtree
        tree = nest_flat_stats(outcome.stats)
        for row in rows:
            node = tree
            for part in row.component.split("."):
                node = node[part]
            assert row.stage in node["hop"]
        # histograms ride along under .hophist.
        assert any(".hophist." in k for k in outcome.stats)
