"""Cross-validation: the analytic ring model vs the cycle-accurate
router-level ring (paper Fig 10 fidelity).

The full-chip simulator uses the fast analytic slice-reservation links;
these tests check that, on identical traffic, the analytic model's
latencies agree with a flit-by-flit router simulation to within a small
factor — evidence that the speed/fidelity trade is sound.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NocError
from repro.noc import Packet, Ring
from repro.noc.cyclering import CycleRing
from repro.noc.packet import NodeId
from repro.sim import RngTree, Simulator

STOPS = 8


def run_cycle_ring(routes, policy="greedy"):
    ring = CycleRing(STOPS, width_bytes=8, slice_bytes=2, policy=policy)
    packets = [ring.inject(src, dst, size) for src, dst, size in routes]
    ring.run()
    return ring, packets


def run_analytic_ring(routes):
    sim = Simulator()
    ring = Ring(sim, "a", STOPS, datapath_bytes=8, fixed_per_dir=1,
                bidi_datapaths=0, slice_bytes=2)
    packets = []
    for src, dst, size in routes:
        pkt = Packet(src=NodeId("core", 0, src), dst=NodeId("core", 0, dst),
                     size_bytes=size)
        packets.append(pkt)
        ring.send(pkt, src, dst)
    sim.run()
    return ring, packets


class TestCycleRingBasics:
    def test_single_packet_latency(self):
        ring, (pkt,) = run_cycle_ring([(0, 2, 4)])
        assert pkt.delivered_at is not None
        # 2 hops, one allocation cycle each
        assert pkt.latency == 2

    def test_direction_is_shortest(self):
        ring = CycleRing(STOPS)
        assert ring.choose_direction(0, 2) == "cw"
        assert ring.choose_direction(0, 6) == "ccw"

    def test_large_packet_splits_into_flits(self):
        ring, (pkt,) = run_cycle_ring([(0, 1, 24)])
        assert pkt.delivered_at is not None
        assert pkt.latency >= 3              # 24B over an 8B channel

    def test_validation(self):
        ring = CycleRing(4)
        with pytest.raises(NocError):
            ring.inject(0, 0, 4)
        with pytest.raises(NocError):
            ring.inject(0, 9, 4)
        with pytest.raises(NocError):
            CycleRing(1)

    def test_small_flits_share_a_cycle_under_greedy(self):
        """Two 2B packets injected at the same stop leave together."""
        greedy, pkts_g = run_cycle_ring([(0, 4, 2)] * 4)
        mono, pkts_m = run_cycle_ring([(0, 4, 2)] * 4, policy="monolithic")
        assert max(p.latency for p in pkts_g) < max(p.latency for p in pkts_m)


class TestConservation:
    @given(st.lists(
        st.tuples(st.integers(0, STOPS - 1), st.integers(0, STOPS - 1),
                  st.sampled_from([1, 2, 4, 8, 16])),
        min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_every_packet_delivered(self, routes):
        routes = [(s, d, z) for s, d, z in routes if s != d]
        if not routes:
            return
        ring, packets = run_cycle_ring(routes)
        assert len(ring.delivered) == len(packets)
        assert all(p.delivered_at is not None for p in packets)
        assert ring.in_flight == 0


class TestAgreementWithAnalyticModel:
    def uniform_routes(self, n, seed):
        rng = RngTree(seed).stream("xval")
        routes = []
        while len(routes) < n:
            src = rng.randrange(STOPS)
            dst = rng.randrange(STOPS)
            if src != dst:
                routes.append((src, dst, rng.choice([1, 2, 4, 8])))
        return routes

    def test_light_load_latencies_close(self):
        """One packet at a time: both models charge per-hop costs of the
        same order (analytic adds router+hop pipeline cycles)."""
        for src, dst, size in [(0, 1, 2), (0, 3, 4), (2, 7, 8)]:
            _, (cyc_pkt,) = run_cycle_ring([(src, dst, size)])
            _, (ana_pkt,) = run_analytic_ring([(src, dst, size)])
            assert cyc_pkt.latency <= ana_pkt.latency <= 4 * cyc_pkt.latency

    def test_bulk_mean_latency_within_factor(self):
        routes = self.uniform_routes(60, seed=2)
        cyc_ring, _ = run_cycle_ring(routes)
        ana_ring, ana_pkts = run_analytic_ring(routes)
        cyc_mean = cyc_ring.mean_latency()
        ana_mean = sum(p.latency for p in ana_pkts) / len(ana_pkts)
        assert cyc_mean * 0.5 <= ana_mean <= cyc_mean * 5

    def test_both_models_rank_policies_identically(self):
        """Greedy beats monolithic for small packets in BOTH models."""
        routes = [(i % STOPS, (i + 3) % STOPS, 2) for i in range(24)]
        cyc_greedy, _ = run_cycle_ring(routes, policy="greedy")
        cyc_mono, _ = run_cycle_ring(routes, policy="monolithic")
        assert cyc_greedy.mean_latency() < cyc_mono.mean_latency()
        # analytic counterpart (greedy vs monolithic links)
        from repro.noc import SlicedLink

        greedy_link = SlicedLink("g", 8, 2, "greedy")
        mono_link = SlicedLink("m", 8, 2, "monolithic")
        t_g = max(greedy_link.transmit(2, 0) for _ in range(8))
        t_m = max(mono_link.transmit(2, 0) for _ in range(8))
        assert t_g < t_m
