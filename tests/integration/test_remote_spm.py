"""Chip-level remote-SPM access tests (paper §3.5.1: "SPM ... can also be
shared among cores in sub-ring")."""

import pytest

from repro.chip import SmarCoChip
from repro.config import smarco_scaled
from repro.core import CoreInstr
from repro.mapreduce import ThreadApi


def make_chip():
    return SmarCoChip(smarco_scaled(2, 4), seed=2)


def spm_loads(chip, requester: int, owner: int, n=10):
    """Loads from `requester`'s perspective to `owner`'s SPM."""
    base = chip.spms[owner].base_addr
    return iter([CoreInstr("load", addr=base + i * 8, size=8)
                 for i in range(n)])


def run_thread_on(chip, core_id, stream):
    api = ThreadApi(chip)
    # place explicitly: bypass the balancer by adding directly
    hw = chip.cores[core_id].add_thread(stream, name="probe")
    chip._loaded = True
    chip.cores[core_id].start()
    chip.sim.run()
    return hw


def test_local_spm_access_stays_on_core():
    chip = make_chip()
    run_thread_on(chip, 0, spm_loads(chip, 0, owner=0))
    assert chip.cores[0].spm_hits.value == 10
    assert chip.noc.delivered.value == 0          # nothing on the wires


def test_remote_spm_access_rides_the_ring():
    chip = make_chip()
    # core 0 reads core 2's SPM (same sub-ring)
    run_thread_on(chip, 0, spm_loads(chip, 0, owner=2))
    assert chip.cores[0].spm_hits.value == 0
    assert chip.noc.delivered.value >= 10          # request + reply legs
    assert chip.memory.total_requests == 0         # never touches DRAM


def test_remote_spm_slower_than_local():
    local_chip = make_chip()
    hw_local = run_thread_on(local_chip, 0,
                             spm_loads(local_chip, 0, owner=0))
    remote_chip = make_chip()
    hw_remote = run_thread_on(remote_chip, 0,
                              spm_loads(remote_chip, 0, owner=2))
    assert hw_remote.finish_time > hw_local.finish_time


def test_cross_ring_spm_access_crosses_main_ring():
    chip = make_chip()
    # core 0 (ring 0) reads core 5's SPM (ring 1)
    run_thread_on(chip, 0, spm_loads(chip, 0, owner=5))
    assert chip.noc.main_ring.total_bytes() > 0


def test_remote_spm_write_is_posted():
    chip = make_chip()
    base = chip.spms[2].base_addr
    stores = iter([CoreInstr("store", addr=base + i * 8, size=8)
                   for i in range(10)])
    hw = run_thread_on(chip, 0, stores)
    assert hw.finish_time is not None
    # posted writes: the thread finished long before a blocking
    # round-trip per store would allow
    assert hw.finish_time < 10 * 20
