"""BENCH record schema: round-trip, validation, file naming."""

import json

import pytest

from repro.errors import ConfigError
from repro.perf import SCHEMA, BenchRecord, load_bench


def make_record(**kernels):
    """A synthetic BenchRecord with one entry per ``name=units_per_sec``."""
    return BenchRecord(
        code_digest="cafe" * 4,
        size="tiny",
        repeat=2,
        created="2026-08-05T12:00:00Z",
        peak_rss_kb=1024,
        kernels={
            name: {
                "wall_s": 1.0,
                "events": 1000,
                "events_per_sec": 1000.0,
                "units": int(ups),
                "unit": "widgets",
                "units_per_sec": float(ups),
            }
            for name, ups in kernels.items()
        },
    )


class TestRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        record = make_record(alpha=100.0, beta=250.0)
        clone = BenchRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()

    def test_every_comparator_field_survives(self):
        record = make_record(alpha=123.5)
        data = record.to_dict()
        assert data["schema"] == SCHEMA
        assert data["code_digest"] == "cafe" * 4
        assert data["size"] == "tiny"
        assert data["repeat"] == 2
        assert data["peak_rss_kb"] == 1024
        kernel = data["kernels"]["alpha"]
        assert kernel["units_per_sec"] == 123.5
        assert kernel["unit"] == "widgets"

    def test_wrong_schema_rejected(self):
        data = make_record(alpha=1.0).to_dict()
        data["schema"] = "repro.perf/999"
        with pytest.raises(ConfigError, match="schema"):
            BenchRecord.from_dict(data)

    def test_created_autofilled_when_blank(self):
        record = BenchRecord(code_digest="d", size="tiny", repeat=1)
        assert record.created.endswith("Z")
        assert "T" in record.created


class TestFiles:
    def test_write_then_load(self, tmp_path):
        record = make_record(alpha=42.0)
        path = record.write(tmp_path)
        assert path.name == "BENCH_20260805T120000Z.json"
        loaded = load_bench(path)
        assert loaded.to_dict() == record.to_dict()

    def test_written_file_is_sorted_json(self, tmp_path):
        path = make_record(alpha=1.0).write(tmp_path)
        data = json.loads(path.read_text())
        assert list(data) == sorted(data)

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError, match="cannot read"):
            load_bench(bad)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_bench(tmp_path / "absent.json")


class TestRender:
    def test_render_mentions_every_kernel(self):
        record = make_record(alpha=10.0, beta=20.0)
        text = record.render()
        assert "alpha" in text and "beta" in text
        assert "tiny" in text
