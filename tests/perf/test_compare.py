"""The ``perf --compare`` regression gate on synthetic slow/fast pairs."""

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.perf import compare_benches

from .test_bench_schema import make_record


class TestCompareBenches:
    def test_flags_2x_slowdown(self):
        baseline = make_record(engine=1000.0)
        current = make_record(engine=500.0)       # injected 2x slowdown
        comparison = compare_benches(baseline, current, threshold_pct=30.0)
        assert not comparison.ok
        (reg,) = comparison.regressions
        assert reg.name == "engine"
        assert reg.ratio == pytest.approx(0.5)
        assert reg.change_pct == pytest.approx(-50.0)

    def test_improvement_passes(self):
        comparison = compare_benches(make_record(engine=1000.0),
                                     make_record(engine=2000.0))
        assert comparison.ok
        assert comparison.kernels[0].change_pct == pytest.approx(100.0)

    def test_within_threshold_drop_passes(self):
        comparison = compare_benches(make_record(engine=1000.0),
                                     make_record(engine=800.0),
                                     threshold_pct=30.0)
        assert comparison.ok
        assert not comparison.kernels[0].regressed

    def test_mixed_kernels_only_slow_one_flagged(self):
        baseline = make_record(engine=1000.0, link=1000.0)
        current = make_record(engine=400.0, link=1100.0)
        comparison = compare_benches(baseline, current)
        assert [k.name for k in comparison.regressions] == ["engine"]

    def test_missing_kernels_reported_but_never_fail(self):
        baseline = make_record(engine=1000.0, retired=1.0)
        current = make_record(engine=1000.0, brand_new=1.0)
        comparison = compare_benches(baseline, current)
        assert comparison.ok
        assert sorted(comparison.missing) == ["brand_new", "retired"]

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigError, match="threshold"):
            compare_benches(make_record(a=1.0), make_record(a=1.0),
                            threshold_pct=0)

    def test_render_marks_regressions(self):
        comparison = compare_benches(make_record(engine=1000.0),
                                     make_record(engine=100.0))
        text = comparison.render()
        assert "REGRESSED" in text
        assert "1 regression(s)" in text


class TestCompareCli:
    def write_pair(self, tmp_path):
        baseline = make_record(engine=1000.0)
        slow = make_record(engine=500.0)
        slow.created = "2026-08-05T13:00:00Z"    # distinct BENCH filename
        return baseline.write(tmp_path), slow.write(tmp_path)

    def test_cli_fails_on_2x_slowdown(self, tmp_path, capsys):
        base_path, slow_path = self.write_pair(tmp_path)
        rc = main(["perf", "--compare", str(base_path), str(slow_path)])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_cli_passes_within_threshold(self, tmp_path, capsys):
        base_path, slow_path = self.write_pair(tmp_path)
        rc = main(["perf", "--compare", str(base_path), str(slow_path),
                   "--threshold", "60"])
        assert rc == 0
        assert "verdict: ok" in capsys.readouterr().out
