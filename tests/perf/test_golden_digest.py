"""Golden digests: fixed-seed chip runs must stay bit-identical.

These constants were captured before the hot-path optimization pass (due
lane in the event engine, ``__slots__`` packets/requests, memoized link
slice fits, MACT mask caching).  Any optimization that changes them has
changed simulation *behaviour*, not just speed, and must be rejected —
regenerate only when a deliberate semantic change lands, via::

    PYTHONPATH=src python -c "
    from repro.perf.kernels import KERNELS, SIZES
    for k in ('chip_fig17', 'chip_fig23'):
        print(k, KERNELS[k](SIZES['tiny'][k])['digest'])"
"""

import pytest

from repro.errors import ConfigError
from repro.perf import KERNELS, SIZES, run_kernel

# size -> kernel -> digest (see module docstring before touching these)
# shard_sync pins the SAME digests as chip_fig23: the sharded executor
# (shards=1, quantum=1) must reproduce the serial run bit-for-bit.
GOLDEN = {
    "tiny": {
        "chip_fig17": "5177b6bac3cf1da9",
        "chip_fig23": "c02d317e51b97e68",
        "shard_sync": "c02d317e51b97e68",
    },
    "small": {
        "chip_fig17": "e8b948703de2b034",
        "chip_fig23": "8d95ec410087b301",
        "shard_sync": "8d95ec410087b301",
    },
}


class TestGoldenDigests:
    @pytest.mark.parametrize("size", ["tiny", "small"])
    @pytest.mark.parametrize("kernel",
                             ["chip_fig17", "chip_fig23", "shard_sync"])
    def test_fixed_seed_runs_are_bit_identical(self, size, kernel):
        out = KERNELS[kernel](dict(SIZES[size][kernel]))
        assert out["digest"] == GOLDEN[size][kernel], (
            f"{kernel}[{size}] digest changed — a hot-path 'optimization' "
            f"altered simulation behaviour")


class TestKernelDiscipline:
    def test_repeats_must_agree(self):
        # run_kernel raises internally if the two repeats diverge
        record = run_kernel("engine_churn", size="tiny", repeat=2)
        assert record["events"] == record["units"] > 0
        assert record["wall_s"] > 0
        assert record["events_per_sec"] > 0

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError, match="unknown perf kernel"):
            run_kernel("warp_drive", size="tiny")

    def test_unknown_size_rejected(self):
        with pytest.raises(ConfigError, match="unknown suite size"):
            run_kernel("engine_churn", size="galactic")

    def test_bad_repeat_rejected(self):
        with pytest.raises(ConfigError, match="repeat"):
            run_kernel("engine_churn", size="tiny", repeat=0)

    def test_every_kernel_runs_at_tiny(self):
        # the CI smoke size must cover the full registry
        for name in KERNELS:
            record = run_kernel(name, size="tiny", repeat=1)
            assert record["units"] > 0, name
            assert "unit" in record
