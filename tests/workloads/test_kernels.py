"""Functional-kernel tests for the six HTC benchmarks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads import kmeans, kmp, rnc, search, terasort, wordcount
from repro.workloads.datasets import (
    clustered_points,
    document_corpus,
    low_entropy_string,
    random_records,
    rnc_events,
    synthetic_text,
)


class TestWordcount:
    def test_counts(self):
        assert wordcount.wordcount("a b a") == {"a": 2, "b": 1}

    def test_map_reduce_agree_with_reference(self):
        text = synthetic_text(300, seed=1)
        pairs = wordcount.map_fn(text)
        grouped = {}
        for word, one in pairs:
            grouped.setdefault(word, []).append(one)
        reduced = dict(wordcount.reduce_fn(w, vs) for w, vs in grouped.items())
        assert reduced == wordcount.wordcount(text)


class TestTerasort:
    def test_sorts(self):
        records = random_records(200, seed=2)
        out = terasort.terasort(records, partitions=4)
        assert [r[0] for r in out] == sorted(r[0] for r in records)
        assert len(out) == len(records)

    def test_single_partition(self):
        records = random_records(50, seed=3)
        assert terasort.terasort(records, partitions=1) == sorted(
            records, key=lambda r: r[0])

    def test_partition_of_respects_splitters(self):
        splitters = [b"b", b"m"]
        assert terasort.partition_of(b"a", splitters) == 0
        assert terasort.partition_of(b"c", splitters) == 1
        assert terasort.partition_of(b"z", splitters) == 2

    def test_bad_partitions(self):
        with pytest.raises(WorkloadError):
            terasort.sample_splitters([], 0)

    @given(st.lists(st.binary(min_size=1, max_size=6), min_size=1, max_size=80),
           st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_property_sorted_and_permutation(self, keys, partitions):
        records = [(k, b"v") for k in keys]
        out = terasort.terasort(records, partitions)
        assert [r[0] for r in out] == sorted(keys)


class TestSearch:
    def make_index(self):
        index = search.SearchIndex()
        index.add_document(0, "cloud server cloud")
        index.add_document(1, "video photo server")
        index.add_document(2, "cloud")
        return index

    def test_query_ranks_by_tfidf(self):
        index = self.make_index()
        ranked = index.query("cloud")
        ids = [doc for doc, _ in ranked]
        assert set(ids) == {0, 2}
        assert ids[0] == 2            # doc 2 is 100% 'cloud'

    def test_missing_term(self):
        assert self.make_index().query("nosuchterm") == []

    def test_duplicate_doc_rejected(self):
        index = self.make_index()
        with pytest.raises(WorkloadError):
            index.add_document(0, "again")

    def test_df(self):
        index = self.make_index()
        assert index.df("cloud") == 2 and index.df("photo") == 1

    def test_corpus_scale(self):
        index = search.SearchIndex()
        for i, doc in enumerate(document_corpus(30, seed=4)):
            index.add_document(i, doc)
        assert index.num_documents == 30
        results = index.query("data0 cloud1")
        assert all(isinstance(d, int) for d, _ in results)


class TestKmeans:
    def test_recovers_separated_clusters(self):
        points = clustered_points(120, dim=2, clusters=3, spread=0.2, seed=5)
        centroids, labels = kmeans.kmeans(points, k=3, iterations=20)
        assert len(centroids) == 3
        # points generated round-robin: same-cluster points share labels
        for base in range(3):
            group = {labels[i] for i in range(base, 120, 3)}
            assert len(group) == 1

    def test_assign_nearest(self):
        assert kmeans.assign([0, 0], [[5, 5], [0, 1]]) == 1

    def test_invalid_k(self):
        with pytest.raises(WorkloadError):
            kmeans.kmeans([[1, 2]], k=5)

    def test_mapreduce_round_matches_lloyd_step(self):
        points = clustered_points(60, dim=2, clusters=2, seed=6)
        centroids = [[0.0, 0.0], [1.0, 1.0]]
        pairs = kmeans.map_fn((points, centroids))
        grouped = {}
        for c, partial in pairs:
            grouped.setdefault(c, []).append(partial)
        new = {c: kmeans.reduce_fn(c, partials)[1]
               for c, partials in grouped.items()}
        # reference step
        labels = [kmeans.assign(p, centroids) for p in points]
        for c in new:
            members = [points[i] for i, l in enumerate(labels) if l == c]
            ref = [sum(p[d] for p in members) / len(members) for d in range(2)]
            assert new[c] == pytest.approx(ref)


class TestKmp:
    def test_overlapping_matches(self):
        assert kmp.kmp_search("abababa", "aba") == [0, 2, 4]

    def test_no_match(self):
        assert kmp.kmp_search("aaaa", "b") == []

    def test_empty_pattern_rejected(self):
        with pytest.raises(WorkloadError):
            kmp.failure_table("")

    @given(st.text(alphabet="ab", max_size=120),
           st.text(alphabet="ab", min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_reference(self, text, pattern):
        ref = [i for i in range(len(text) - len(pattern) + 1)
               if text[i:i + len(pattern)] == pattern]
        assert kmp.kmp_search(text, pattern) == ref

    def test_python_and_asm_kernels_agree(self):
        """Cross-validate the Python KMP against the ISA machine's."""
        from repro.isa import Machine
        from repro.isa.programs import (
            kmp_failure_table, kmp_search_program, load_words)

        text = low_entropy_string(300, seed=7)
        pattern = "acgt"
        machine = Machine(kmp_search_program())
        machine.memory.write_bytes(0x1000, text.encode())
        machine.memory.write_bytes(0x4000, pattern.encode())
        load_words(machine.memory, 0x5000, kmp_failure_table(pattern.encode()))
        machine.write_reg(1, 0x1000)
        machine.write_reg(2, len(text))
        machine.write_reg(3, 0x4000)
        machine.write_reg(4, len(pattern))
        machine.write_reg(5, 0x5000)
        machine.run()
        assert machine.read_reg(10) == kmp.kmp_count(text, pattern)

    def test_mapreduce_rebases_offsets(self):
        text = "xabxxabx"
        half = len(text) // 2
        out0 = kmp.map_fn((text[:half], "ab", 0))
        out1 = kmp.map_fn((text[half:], "ab", half))
        _, merged = kmp.reduce_fn("ab", [out0[0][1], out1[0][1]])
        assert merged == kmp.kmp_search(text, "ab")


class TestRnc:
    def test_event_validation(self):
        with pytest.raises(WorkloadError):
            rnc.ConnectionEvent(arrival=10, work_cycles=5, deadline=10)
        with pytest.raises(WorkloadError):
            rnc.ConnectionEvent(arrival=0, work_cycles=0, deadline=10)

    def test_make_tasks_priorities(self):
        events = rnc.default_events(20, seed=8)
        tasks = rnc.make_tasks(events, high_priority_fraction=0.1)
        from repro.sched import TaskPriority

        assert sum(1 for t in tasks if t.priority is TaskPriority.HIGH) == 2
        assert len(tasks) == 20

    def test_serial_processor_meets_when_lightly_loaded(self):
        events = [rnc.ConnectionEvent(arrival=i * 1000.0, work_cycles=100,
                                      deadline=i * 1000.0 + 10_000)
                  for i in range(10)]
        met, missed = rnc.process_serial(events)
        assert (met, missed) == (10, 0)

    def test_serial_processor_misses_under_overload(self):
        events = [rnc.ConnectionEvent(arrival=0.0, work_cycles=10_000,
                                      deadline=15_000)
                  for _ in range(10)]
        met, missed = rnc.process_serial(events)
        assert missed > 0

    def test_map_reduce_totals(self):
        events = rnc.default_events(30, seed=9)
        half = len(events) // 2
        pairs = rnc.map_fn(events[:half]) + rnc.map_fn(events[half:])
        grouped = {}
        for k, v in pairs:
            grouped.setdefault(k, []).append(v)
        totals = dict(rnc.reduce_fn(k, vs) for k, vs in grouped.items())
        assert totals["met"] + totals["missed"] == 30


class TestDatasets:
    def test_synthetic_text_deterministic(self):
        assert synthetic_text(50, seed=1) == synthetic_text(50, seed=1)
        assert synthetic_text(50, seed=1) != synthetic_text(50, seed=2)

    def test_record_shapes(self):
        records = random_records(10, key_bytes=10, value_bytes=6, seed=1)
        assert len(records) == 10
        assert all(len(k) == 10 and len(v) == 6 for k, v in records)

    def test_rnc_events_monotone_arrivals(self):
        events = rnc_events(50, seed=1)
        arrivals = [a for a, _, _ in events]
        assert arrivals == sorted(arrivals)
        assert all(d - a == pytest.approx(340_000) for a, _, d in events)
