"""Workload profile and stream-generation tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tcg import UNCACHED_BASE
from repro.errors import WorkloadError
from repro.mem.spm import SPM_REGION_BASE
from repro.noc.traffic import GranularityDist
from repro.sim import RngTree
from repro.workloads import (
    HTC_PROFILES,
    SPLASH2_PROFILES,
    WorkloadProfile,
    all_profiles,
    get_profile,
)


class TestRegistry:
    def test_six_htc_benchmarks_registered(self):
        assert set(HTC_PROFILES) == {
            "wordcount", "terasort", "search", "kmeans", "kmp", "rnc"
        }

    def test_eleven_splash2_apps(self):
        assert len(SPLASH2_PROFILES) == 11

    def test_get_profile(self):
        assert get_profile("kmp").name == "kmp"
        with pytest.raises(WorkloadError):
            get_profile("doom")

    def test_all_profiles_contains_both_families(self):
        names = set(all_profiles())
        assert "wordcount" in names and "splash2.fft" in names


class TestPaperAlignment:
    def test_search_has_lowest_memory_ratio(self):
        """Paper Fig 17: search 'is characterized by lower memory
        instruction'."""
        search = HTC_PROFILES["search"]
        assert all(search.mem_ratio <= p.mem_ratio
                   for p in HTC_PROFILES.values())

    def test_kmp_and_rnc_have_smallest_granularity(self):
        """Paper Fig 8/18: KMP and RNC carry the largest small-packet
        share."""
        def tiny_share(p):
            return sum(w for s, w in p.granularity.weights if s <= 2) / \
                sum(w for _, w in p.granularity.weights)

        shares = {name: tiny_share(p) for name, p in HTC_PROFILES.items()}
        top_two = sorted(shares, key=shares.get, reverse=True)[:2]
        assert set(top_two) == {"kmp", "rnc"}

    def test_kmeans_has_no_tiny_accesses(self):
        """Paper: 'K-means contains few 1 Byte or 2 Bytes memory access
        packets'."""
        kmeans = HTC_PROFILES["kmeans"]
        assert all(size > 2 for size, _ in kmeans.granularity.weights)

    def test_htc_granularity_smaller_than_splash2(self):
        """Paper Fig 8: HTC accesses are much smaller than conventional."""
        htc_mean = sum(p.granularity.mean() for p in HTC_PROFILES.values()
                       ) / len(HTC_PROFILES)
        splash_mean = sum(p.granularity.mean() for p in SPLASH2_PROFILES.values()
                          ) / len(SPLASH2_PROFILES)
        assert htc_mean * 3 < splash_mean

    def test_only_rnc_is_realtime(self):
        assert HTC_PROFILES["rnc"].realtime
        assert sum(p.realtime for p in HTC_PROFILES.values()) == 1

    def test_splash2_has_no_spm_use(self):
        assert all(p.spm_fraction == 0 for p in SPLASH2_PROFILES.values())


class TestValidation:
    def base_kwargs(self):
        return dict(
            name="x", mem_ratio=0.3, branch_ratio=0.1,
            granularity=GranularityDist(((4, 1.0),)),
            spm_fraction=0.5, uncached_fraction=0.3,
            working_set_bytes=1024, code_footprint_bytes=1024,
        )

    def test_mix_must_not_exceed_one(self):
        kwargs = self.base_kwargs()
        kwargs.update(mem_ratio=0.8, branch_ratio=0.3)
        with pytest.raises(WorkloadError):
            WorkloadProfile(**kwargs)

    def test_memory_mix_must_not_exceed_one(self):
        kwargs = self.base_kwargs()
        kwargs.update(spm_fraction=0.7, uncached_fraction=0.5)
        with pytest.raises(WorkloadError):
            WorkloadProfile(**kwargs)

    def test_footprints_positive(self):
        kwargs = self.base_kwargs()
        kwargs.update(working_set_bytes=0)
        with pytest.raises(WorkloadError):
            WorkloadProfile(**kwargs)


class TestStreamGeneration:
    def test_stream_length(self):
        rng = RngTree(0).stream("s")
        instrs = list(get_profile("kmp").stream(500, rng))
        assert len(instrs) == 500

    def test_stream_mix_matches_profile(self):
        profile = get_profile("wordcount")
        rng = RngTree(1).stream("s")
        instrs = list(profile.stream(20_000, rng))
        mem = sum(1 for i in instrs if i.is_mem) / len(instrs)
        branch = sum(1 for i in instrs if i.kind == "branch") / len(instrs)
        assert mem == pytest.approx(profile.mem_ratio, abs=0.02)
        assert branch == pytest.approx(profile.branch_ratio, abs=0.02)

    def test_stream_addresses_land_in_declared_regions(self):
        profile = get_profile("terasort")
        rng = RngTree(2).stream("s")
        spm_base = SPM_REGION_BASE + 3 * 128 * 1024
        regions = {"spm": 0, "uncached": 0, "heap": 0}
        for instr in profile.stream(5000, rng, thread_id=3, spm_base=spm_base):
            if not instr.is_mem:
                continue
            if instr.addr >= UNCACHED_BASE:
                regions["uncached"] += 1
            elif instr.addr >= SPM_REGION_BASE:
                regions["heap"] += 0  # should not happen for other cores
                assert spm_base <= instr.addr < spm_base + 128 * 1024
                regions["spm"] += 1
            else:
                regions["heap"] += 1
        total = sum(regions.values())
        assert regions["spm"] / total == pytest.approx(profile.spm_fraction, abs=0.05)
        assert regions["uncached"] / total == pytest.approx(
            profile.uncached_fraction, abs=0.05)

    def test_stream_deterministic_per_seed(self):
        profile = get_profile("rnc")
        a = list(profile.stream(100, RngTree(5).stream("x")))
        b = list(profile.stream(100, RngTree(5).stream("x")))
        assert a == b

    def test_threads_use_disjoint_heaps(self):
        profile = get_profile("kmeans")
        addr0 = [i.addr for i in profile.stream(2000, RngTree(0).stream("a"),
                                                thread_id=0)
                 if i.is_mem and i.addr < SPM_REGION_BASE]
        addr1 = [i.addr for i in profile.stream(2000, RngTree(0).stream("b"),
                                                thread_id=1)
                 if i.is_mem and i.addr < SPM_REGION_BASE]
        assert addr0 and addr1
        assert max(addr0) < min(addr1)

    @given(st.sampled_from(sorted(HTC_PROFILES)))
    @settings(max_examples=6, deadline=None)
    def test_stream_sizes_follow_granularity_support(self, name):
        profile = get_profile(name)
        support = {s for s, _ in profile.granularity.weights}
        rng = RngTree(9).stream(name)
        for instr in profile.stream(1000, rng):
            if instr.is_mem:
                assert instr.size in support


class TestXeonSamplers:
    def test_data_sampler_shape(self):
        profile = get_profile("kmp")
        rng = RngTree(0).stream("x")
        sample = profile.xeon_data_sampler(0, rng)
        addr, size, is_write = sample()
        assert addr >= 0 and size >= 1 and isinstance(is_write, bool)

    def test_no_spm_addresses_on_xeon(self):
        profile = get_profile("wordcount")
        rng = RngTree(1).stream("x")
        sample = profile.xeon_data_sampler(0, rng)
        for _ in range(500):
            addr, _, _ = sample()
            assert not (SPM_REGION_BASE <= addr < UNCACHED_BASE)

    def test_code_sampler_within_footprint(self):
        from repro.workloads.base import CODE_BASE

        profile = get_profile("search")
        rng = RngTree(2).stream("x")
        sample = profile.xeon_code_sampler(rng)
        for _ in range(200):
            addr = sample()
            assert CODE_BASE <= addr < CODE_BASE + profile.code_footprint_bytes
