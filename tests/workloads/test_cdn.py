"""CDN model tests (paper Fig 2 substitution)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import CdnConfig, CdnModel


def test_connection_limit_matches_paper():
    """10 Gbps NIC / 25 Mbps video = 400 clients."""
    assert CdnConfig().max_connections == 400


def test_nic_saturates_at_limit():
    model = CdnModel()
    assert model.nic_utilization(400) == pytest.approx(1.0)
    assert model.nic_utilization(200) == pytest.approx(0.5)
    assert model.nic_utilization(1000) == 1.0          # capped


def test_cpu_utilization_stays_under_ten_percent():
    """The paper's headline observation: CPU <10% while the NIC is full."""
    model = CdnModel()
    assert model.cpu_utilization(400) < 0.10
    assert model.cpu_utilization(400) > 0.01           # but not zero


def test_cpu_utilization_monotone_until_nic_cap():
    model = CdnModel()
    utils = [model.cpu_utilization(n) for n in (50, 100, 200, 400)]
    assert utils == sorted(utils)
    assert model.cpu_utilization(800) == model.cpu_utilization(400)


def test_branch_miss_exceeds_ten_percent_near_limit():
    model = CdnModel()
    assert model.branch_miss_ratio(400) > 0.10
    assert model.branch_miss_ratio(10) < 0.05


def test_l1_miss_measured_around_forty_percent_at_limit():
    model = CdnModel()
    miss_at_limit = model.l1_miss_ratio(400)
    assert 0.3 <= miss_at_limit <= 0.55                # paper: ~40%


def test_l1_miss_grows_with_connections():
    model = CdnModel()
    few = model.l1_miss_ratio(4)
    many = model.l1_miss_ratio(400)
    assert few < many


def test_l1_miss_zero_connections():
    assert CdnModel().l1_miss_ratio(0) == 0.0


def test_sweep_produces_increasing_connection_counts():
    points = CdnModel().sweep(points=6)
    counts = [p.connections for p in points]
    assert counts == sorted(counts)
    assert counts[-1] == 400


def test_config_validation():
    with pytest.raises(WorkloadError):
        CdnConfig(nic_gbps=0).validate()
    with pytest.raises(WorkloadError):
        CdnConfig(video_rate_mbps=20_000).validate()
