"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_list_workloads(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("kmp", "rnc", "splash2.fft"):
        assert name in out


def test_run_command(capsys):
    rc = main(["run", "kmp", "--sub-rings", "1", "--cores", "4",
               "--threads-per-core", "4", "--instrs", "100"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "chip IPC" in out and "MACT batching" in out


def test_run_with_shared_code(capsys):
    rc = main(["run", "search", "--sub-rings", "1", "--cores", "2",
               "--instrs", "100", "--shared-code"])
    assert rc == 0


def test_xeon_command(capsys):
    rc = main(["xeon", "kmp", "--threads", "8", "--instrs", "5000"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "idle ratio" in out


def test_compare_command(capsys):
    rc = main(["compare", "kmp", "--sub-rings", "2", "--instrs", "150"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "speedup" in out and "energy-efficiency gain" in out


def test_area_power_command(capsys):
    assert main(["area-power"]) == 0
    out = capsys.readouterr().out
    assert "751" in out and "MACT" in out
    assert "DVFS operating points" in out and "nominal" in out


def test_run_energy_flag(capsys):
    rc = main(["run", "kmp", "--sub-rings", "1", "--cores", "4",
               "--threads-per-core", "4", "--instrs", "80",
               "--energy", "--dvfs", "eco"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Energy: kmp" in out and "dvfs=eco" in out
    assert "Hierarchy Ring" in out and "perf/W" in out


def test_compare_energy_flag(capsys):
    rc = main(["compare", "kmp", "--sub-rings", "1",
               "--instrs", "100", "--energy"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "vs Xeon perf/W" in out


def test_report_energy_section(tmp_path, capsys):
    main(["sweep", "kmp", "--kind", "compare", "--sub-rings", "1",
          "--cores", "4", "--instrs", "80", "--dvfs-points", "eco",
          "nominal", "--out", str(tmp_path)])
    capsys.readouterr()
    assert main(["report", "--results-dir", str(tmp_path),
                 "--runs-dir", str(tmp_path / "runs"), "--energy"]) == 0
    out = capsys.readouterr().out
    assert "## Energy efficiency" in out
    assert "eco" in out and "nominal" in out


def test_cdn_command(capsys):
    assert main(["cdn"]) == 0
    out = capsys.readouterr().out
    assert "400" in out


def test_sweep_command(tmp_path, capsys):
    argv = ["sweep", "kmp", "wordcount", "--seeds", "0", "1",
            "--sub-rings", "1", "--cores", "4", "--threads-per-core", "4",
            "--instrs", "80", "--out", str(tmp_path)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "Sweep telemetry" in out
    assert "4 points" in out and "0 cache hits" in out
    assert len(list((tmp_path / "runs").glob("*.json"))) == 4

    # warm rerun resolves every point from the cache
    assert main(argv) == 0
    assert "4 cache hits" in capsys.readouterr().out


def test_sweep_detail_and_policy_axis(tmp_path, capsys):
    assert main(["sweep", "kmp", "--policies", "inpair", "coarse",
                 "--sub-rings", "1", "--cores", "4", "--instrs", "80",
                 "--out", str(tmp_path), "--detail"]) == 0
    out = capsys.readouterr().out
    assert "2 points" in out
    assert "throughput_ips" in out       # --detail prints full results


def test_report_includes_sweep_telemetry(tmp_path, capsys):
    main(["sweep", "kmp", "--sub-rings", "1", "--cores", "4",
          "--instrs", "80", "--out", str(tmp_path)])
    capsys.readouterr()
    assert main(["report", "--results-dir", str(tmp_path),
                 "--runs-dir", str(tmp_path / "runs")]) == 0
    out = capsys.readouterr().out
    assert "## Sweep telemetry" in out


def test_unknown_workload_raises():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError):
        main(["run", "doom"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_dump_docs_exits_zero(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--dump-docs"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "CLI reference" in out
    for command in ("run", "sweep", "soak", "perf"):
        assert f"## `{command}`" in out


def test_committed_cli_docs_are_fresh(capsys):
    """docs/cli.md must match the live parser (regenerate: make docs-cli)."""
    from pathlib import Path

    from repro.docgen import render_cli_docs

    committed = Path(__file__).resolve().parent.parent / "docs" / "cli.md"
    assert committed.read_text() == render_cli_docs(build_parser()), (
        "docs/cli.md is stale — run `make docs-cli`")
