"""Tests for deterministic named RNG streams."""

from repro.sim import RngTree, derive_seed


def test_same_name_same_stream_object():
    tree = RngTree(42)
    assert tree.stream("noc") is tree.stream("noc")


def test_streams_are_deterministic_across_trees():
    a = RngTree(42).stream("noc")
    b = RngTree(42).stream("noc")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_give_independent_streams():
    tree = RngTree(42)
    xs = [tree.stream("a").random() for _ in range(5)]
    ys = [tree.stream("b").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_differ():
    assert RngTree(1).stream("x").random() != RngTree(2).stream("x").random()


def test_child_tree_namespacing():
    tree = RngTree(7)
    child1 = tree.child("subring0")
    child2 = tree.child("subring1")
    assert child1.stream("core").random() != child2.stream("core").random()
    # children are reproducible
    again = RngTree(7).child("subring0")
    assert again.stream("core").random() == RngTree(7).child("subring0").stream("core").random()


def test_derive_seed_stable():
    assert derive_seed(5, "foo") == derive_seed(5, "foo")
    assert derive_seed(5, "foo") != derive_seed(5, "bar")
    assert 0 <= derive_seed(5, "foo") < 2 ** 64
