"""Tests for the trace buffer."""

from repro.sim import TraceBuffer


def test_disabled_by_default():
    buf = TraceBuffer()
    buf.emit(0, "core0", "issue")
    assert len(buf) == 0


def test_records_when_enabled():
    buf = TraceBuffer(enabled=True)
    buf.emit(1, "core0", "issue", {"pc": 4})
    buf.emit(2, "core1", "miss")
    assert len(buf) == 2
    rec = buf.records()[0]
    assert (rec.time, rec.source, rec.event, rec.payload) == (1, "core0", "issue", {"pc": 4})


def test_filtering():
    buf = TraceBuffer(enabled=True)
    buf.emit(1, "a", "x")
    buf.emit(2, "a", "y")
    buf.emit(3, "b", "x")
    assert len(buf.records(source="a")) == 2
    assert len(buf.records(event="x")) == 2
    assert len(buf.records(source="a", event="x")) == 1


def test_capacity_bound_and_dropped_count():
    buf = TraceBuffer(capacity=3, enabled=True)
    for i in range(5):
        buf.emit(i, "s", "e")
    assert len(buf) == 3
    assert buf.dropped == 2
    assert [r.time for r in buf] == [2, 3, 4]


def test_clear():
    buf = TraceBuffer(enabled=True)
    buf.emit(0, "s", "e")
    buf.clear()
    assert len(buf) == 0 and buf.dropped == 0
