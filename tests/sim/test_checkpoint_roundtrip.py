"""Snapshot round-trip conformance (modeled on tests/sched/test_policy_api.py).

Three contracts, enforced for *every* registered participant so new
components and policies are covered the day they are registered:

* ``load_state(state_dict())`` is an identity for every component of a
  built-and-partly-run SmarCo chip and Xeon system;
* every registered scheduler policy round-trips its queue and context
  state through ``SchedulerPolicy.state_dict()``;
* the checkpoint container fails loudly on schema mismatch and
  format/code version skew instead of restoring garbage.
"""

import pytest

from repro.chip.session import RunSession
from repro.config import smarco_scaled
from repro.errors import (CheckpointError, CheckpointSchemaError,
                          CheckpointVersionError, ConfigError)
from repro.exp.request import RunRequest
from repro.sched import Task, TaskPriority, create_policy, list_policies
from repro.sim.rng import RngTree


def _smarco_request(**overrides):
    base = dict(kind="smarco", workload="kmp", seed=3,
                smarco_config=smarco_scaled(2), threads_per_core=4,
                instrs_per_thread=120)
    base.update(overrides)
    return RunRequest(**base)


def _partly_run_session(request, cycles):
    session = RunSession(request)
    session.run_to(cycles)
    return session


# -- component conformance ----------------------------------------------------


class TestComponentIdentity:
    """load_state(state_dict()) is an identity, component by component."""

    @pytest.fixture(scope="class")
    def smarco_session(self):
        return _partly_run_session(_smarco_request(), cycles=800)

    @pytest.fixture(scope="class")
    def xeon_session(self):
        return _partly_run_session(
            RunRequest(kind="xeon", workload="wordcount", seed=1,
                       xeon_threads=4, xeon_instrs_per_thread=2000),
            cycles=10_000)

    def _assert_identity(self, root):
        seen = 0
        for comp in root.walk():
            state = comp.state_dict()
            comp.load_state(state)
            again = comp.state_dict()
            assert again == state, f"{comp.path}: round-trip drifted"
            seen += 1
        return seen

    def test_every_smarco_component(self, smarco_session):
        assert self._assert_identity(smarco_session.system) > 10

    def test_every_xeon_component(self, xeon_session):
        assert self._assert_identity(xeon_session.system) > 2

    def test_simulator_state_roundtrip(self, smarco_session):
        sim = smarco_session.sim
        state = sim.state_dict()
        assert state["now"] == sim.now
        assert state["queue"], "a paused chip must have pending events"

    def test_rng_tree_roundtrip(self, smarco_session):
        rng = smarco_session.system.rng
        state = rng.state_dict()
        before = {name: stream.random()
                  for name, stream in rng.items()}
        rng.load_state(state)
        after = {name: stream.random() for name, stream in rng.items()}
        assert before == after


# -- scheduler policy conformance ---------------------------------------------


def _tasks(n=12, seed=0):
    rng = RngTree(seed).stream("ckpt.tasks")
    out = []
    for _ in range(n):
        pri = TaskPriority.HIGH if rng.random() < 0.3 else TaskPriority.NORMAL
        out.append(Task(work_cycles=rng.uniform(10_000, 90_000),
                        deadline=500_000.0, priority=pri,
                        payload={"criticality": rng.random()}))
    return out


@pytest.fixture(params=list_policies())
def policy_name(request):
    return request.param


class TestPolicyStateConformance:
    """Every registered policy must checkpoint its queues and contexts."""

    def _loaded_pair(self, policy_name):
        sched = create_policy(policy_name)
        for t in _tasks(12):
            sched.submit(t)
        for cid in range(4):
            sched.release_context(cid)
        sched.next_task()              # leave a partially drained queue
        sched.acquire_context()
        fresh = create_policy(policy_name)
        fresh.load_state(sched.state_dict())
        return sched, fresh

    def test_state_dict_roundtrip_identity(self, policy_name):
        sched, fresh = self._loaded_pair(policy_name)
        assert fresh.state_dict() == sched.state_dict()
        assert fresh.pending == sched.pending
        assert fresh.free_contexts == sched.free_contexts

    def test_loaded_policy_drains_identically(self, policy_name):
        sched, fresh = self._loaded_pair(policy_name)
        drain = lambda s: [s.next_task() for _ in range(s.pending)]  # noqa: E731
        assert drain(fresh) == drain(sched)

    def test_base_class_requires_queue_state(self):
        from repro.sched.policy import SchedulerPolicy

        class Bare(SchedulerPolicy):
            def _enqueue(self, task):      # pragma: no cover - unused
                pass

            def _select(self):             # pragma: no cover - unused
                return None

            @property
            def pending(self):
                return 0

        bare = Bare()
        with pytest.raises(NotImplementedError, match="_queue_state"):
            bare.state_dict()
        with pytest.raises(NotImplementedError, match="_load_queue_state"):
            bare.load_state({"null_chain": [], "queue": None})


# -- container error paths ----------------------------------------------------


class TestCheckpointErrors:
    @pytest.fixture(scope="class")
    def ckpt(self):
        return _partly_run_session(_smarco_request(), cycles=500).checkpoint()

    def test_schema_mismatch_on_different_geometry(self, ckpt):
        bigger = _smarco_request(smarco_config=smarco_scaled(4))
        with pytest.raises(CheckpointSchemaError, match="schema"):
            RunSession.restore(ckpt, request=bigger)

    def test_format_version_skew(self, ckpt):
        import dataclasses

        stale = dataclasses.replace(ckpt, format=ckpt.format + 1)
        with pytest.raises(CheckpointVersionError, match="format"):
            RunSession.restore(stale)

    def test_code_digest_skew_and_override(self, ckpt):
        import dataclasses

        skewed = dataclasses.replace(ckpt, code_digest="0" * 16)
        with pytest.raises(CheckpointVersionError, match="code"):
            RunSession.restore(skewed)
        session = RunSession.restore(skewed, allow_code_skew=True)
        assert session.now == ckpt.cycle

    def test_unsupported_kind_rejected(self):
        with pytest.raises(ConfigError, match="does not support sessions"):
            RunSession(RunRequest(kind="tcg", workload="kmp"))

    def test_finished_session_cannot_checkpoint(self):
        session = RunSession(
            RunRequest(kind="sched", sched_policy="fifo",
                       sched_scenario="uniform", sched_tasks=6,
                       sched_contexts=4, seed=0))
        session.finish()
        with pytest.raises(CheckpointError, match="already finished"):
            session.checkpoint()

    def test_not_a_checkpoint_file(self, tmp_path):
        from repro.sim.checkpoint import load_checkpoint

        bogus = tmp_path / "nope.json"
        bogus.write_text("{}")
        with pytest.raises(CheckpointError, match="not a repro-smarco"):
            load_checkpoint(bogus)
