"""Unit tests for the hierarchical component model (tree, ports, lifecycle)."""

import pytest

from repro.errors import WiringError
from repro.sim import Component, InputPort, OutputPort, Simulator
from repro.sim.trace import TraceBuffer


class Producer(Component):
    def __init__(self, parent=None, optional=False):
        super().__init__("producer", parent=parent)
        self.out = self.out_port("out", int, optional=optional)


class Consumer(Component):
    def __init__(self, parent=None):
        super().__init__("consumer", parent=parent)
        self.seen = []
        self.inp = self.in_port("inp", int, handler=self.seen.append)


class TestTree:
    def test_paths_are_scoped(self):
        root = Component("chip")
        mid = Component("subring0", parent=root)
        leaf = Component("mact", parent=mid)
        assert leaf.path == "chip.subring0.mact"
        assert leaf.root is root
        assert root.child("subring0") is mid

    def test_children_inherit_sim_registry_trace(self):
        sim = Simulator()
        trace = TraceBuffer(enabled=True)
        root = Component("chip", sim=sim, trace=trace)
        child = Component("core0", parent=root)
        assert child.sim is sim
        assert child.registry is root.registry
        assert child.trace is trace

    def test_duplicate_child_name_rejected(self):
        root = Component("chip")
        Component("core0", parent=root)
        with pytest.raises(WiringError):
            Component("core0", parent=root)

    def test_bad_names_rejected(self):
        for bad in ("", "a.b", "a/b"):
            with pytest.raises(WiringError):
                Component(bad)

    def test_walk_is_preorder(self):
        root = Component("chip")
        a = Component("a", parent=root)
        Component("a1", parent=a)
        Component("b", parent=root)
        assert [c.name for c in root.walk()] == ["chip", "a", "a1", "b"]

    def test_find_with_glob_segments(self):
        root = Component("chip")
        for s in range(3):
            ring = Component(f"subring{s}", parent=root)
            Component("mact", parent=ring)
        macts = root.find("subring*/mact")
        assert [m.path for m in macts] == [
            "chip.subring0.mact", "chip.subring1.mact", "chip.subring2.mact"]
        assert root.find("subring1.mact")[0] is macts[1]
        assert root.find("nothing/*") == []

    def test_tree_render_and_dict(self):
        root = Component("chip")
        ring = Component("subring0", parent=root)
        Component("mact", parent=ring)
        text = root.tree()
        assert "chip" in text and "subring0" in text and "mact" in text
        d = root.tree_dict()
        assert d["path"] == "chip"
        assert d["children"][0]["children"][0]["name"] == "mact"


class TestPorts:
    def test_send_flows_through_wire(self):
        root = Component("rig")
        producer = Producer(parent=root)
        consumer = Consumer(parent=root)
        wire = producer.out.connect(consumer.inp)
        producer.out.send(7)
        assert consumer.seen == [7]
        assert wire.messages == 1
        assert producer.out.sent == 1 and consumer.inp.received == 1

    def test_fan_out_and_fan_in(self):
        root = Component("rig")
        producer = Producer(parent=root)
        c1, c2 = Consumer(parent=root), Consumer(parent=root.child("consumer"))
        producer.out.connect(c1.inp)
        producer.out.connect(c2.inp)
        producer.out.send(1)
        assert c1.seen == [1] and c2.seen == [1]

    def test_type_mismatch_rejected_at_connect(self):
        root = Component("rig")
        producer = Producer(parent=root)
        other = Component("other", parent=root)
        strings = other.in_port("strings", str, handler=lambda s: None)
        with pytest.raises(WiringError):
            producer.out.connect(strings)

    def test_payload_type_checked_at_delivery(self):
        root = Component("rig")
        producer = Producer(parent=root)
        consumer = Consumer(parent=root)
        producer.out.connect(consumer.inp)
        with pytest.raises(WiringError):
            producer.out.send("not an int")

    def test_send_on_unconnected_port_raises(self):
        producer = Producer()
        with pytest.raises(WiringError):
            producer.out.send(1)

    def test_unbound_input_raises_on_recv(self):
        root = Component("rig")
        port = root.in_port("inp", int)
        with pytest.raises(WiringError):
            port.recv(1)
        port.bind(lambda x: x * 2)
        assert port.recv(3) == 6
        with pytest.raises(WiringError):
            port.bind(lambda x: x)

    def test_duplicate_port_name_rejected(self):
        root = Component("rig")
        root.in_port("p", int, handler=lambda x: None)
        with pytest.raises(WiringError):
            root.out_port("p", int)

    def test_port_paths(self):
        root = Component("chip")
        core = Component("core0", parent=root)
        port = core.out_port("mem_req", int, optional=True)
        assert port.path == "chip.core0.mem_req"
        assert core.port("mem_req") is port


class Wired(Component):
    """Connects its producer to its consumer in on_connect."""

    def __init__(self):
        super().__init__("rig")
        self.producer = Producer(parent=self)
        self.consumer = Consumer(parent=self)
        self.finalized = False

    def on_connect(self):
        self.producer.out.connect(self.consumer.inp)

    def on_finalize(self):
        self.finalized = True


class TestLifecycle:
    def test_elaborate_runs_connect_then_finalize(self):
        rig = Wired()
        assert rig.phase == "build"
        rig.elaborate()
        assert rig.phase == "ready"
        assert rig.finalized
        rig.producer.out.send(5)
        assert rig.consumer.seen == [5]

    def test_elaborate_only_on_root_and_only_once(self):
        rig = Wired()
        with pytest.raises(WiringError):
            rig.producer.elaborate()
        rig.elaborate()
        with pytest.raises(WiringError):
            rig.elaborate()

    def test_unconnected_required_output_fails_finalize(self):
        root = Component("rig")
        Producer(parent=root)
        with pytest.raises(WiringError):
            root.elaborate()

    def test_optional_output_may_stay_unconnected(self):
        root = Component("rig")
        Producer(parent=root, optional=True)
        root.elaborate()
        assert root.phase == "ready"

    def test_connect_after_elaborate_rejected(self):
        rig = Wired()
        rig.elaborate()
        with pytest.raises(WiringError):
            rig.producer.out.connect(
                InputPort(rig.consumer, "late", int, handler=print))

    def test_children_cannot_join_after_build(self):
        rig = Wired()
        rig.elaborate()
        with pytest.raises(WiringError):
            Component("late", parent=rig)

    def test_reset_reaches_every_component(self):
        class Resettable(Component):
            def __init__(self, name, parent=None):
                super().__init__(name, parent=parent)
                self.resets = 0

            def on_reset(self):
                self.resets += 1

        root = Resettable("root")
        kid = Resettable("kid", parent=root)
        root.reset()
        assert root.resets == 1 and kid.resets == 1


class TestScopedStatsAndTrace:
    def test_stats_registered_under_path(self):
        root = Component("chip")
        leaf = Component("mact", parent=Component("subring0", parent=root))
        counter = leaf.stats.counter("requests_in")
        counter.inc(3)
        assert root.registry.dump()["chip.subring0.mact.requests_in"] == 3

    def test_emit_trace_stamps_path(self):
        trace = TraceBuffer(enabled=True)
        root = Component("chip", sim=Simulator(), trace=trace)
        leaf = Component("core0", parent=root)
        leaf.emit_trace("wake", "t0")
        rec = list(trace)[0]
        assert rec.source == "chip.core0" and rec.event == "wake"
