"""Unit tests for the runtime invariant audit layer."""

import pytest

from repro.config import AUDIT_ENV, AuditConfig, ConfigError, MACTConfig
from repro.errors import AuditError
from repro.mem.mact import MACT
from repro.mem.request import MemRequest
from repro.noc.link import SlicedLink
from repro.sim import Auditor, Simulator, Violation


def collect_auditor(**kwargs):
    return Auditor(AuditConfig(enabled=True, fail_fast=False, **kwargs))


class TestAuditConfig:
    def test_default_is_disabled(self):
        assert AuditConfig().enabled is False

    def test_from_env_off_values(self):
        for value in ("", "0", "off", "false", "no", "OFF"):
            assert AuditConfig.from_env(value).enabled is False

    def test_from_env_on_is_fail_fast(self):
        cfg = AuditConfig.from_env("1")
        assert cfg.enabled and cfg.fail_fast

    def test_from_env_collect_mode(self):
        cfg = AuditConfig.from_env("collect")
        assert cfg.enabled and not cfg.fail_fast

    def test_from_env_reads_environment(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "collect")
        cfg = AuditConfig.from_env()
        assert cfg.enabled and not cfg.fail_fast
        monkeypatch.delenv(AUDIT_ENV)
        assert AuditConfig.from_env().enabled is False

    def test_max_violations_validated(self):
        with pytest.raises(ConfigError):
            AuditConfig(max_violations=0).validate()


class TestViolationPlumbing:
    def test_fail_fast_raises(self):
        auditor = Auditor(AuditConfig(enabled=True, fail_fast=True))
        with pytest.raises(AuditError, match="boom"):
            auditor.violation("request_conservation", "chip", 1.0, "boom")

    def test_collect_mode_accumulates(self):
        auditor = collect_auditor()
        auditor.violation("request_conservation", "chip", 1.0, "one")
        auditor.violation("mact_consistency", "mact", 2.0, "two")
        assert not auditor.clean
        assert [v.message for v in auditor.violations] == ["one", "two"]

    def test_max_violations_caps_the_list(self):
        auditor = collect_auditor(max_violations=2)
        for i in range(5):
            auditor.violation("thread_fsm", "core", float(i), f"v{i}")
        assert len(auditor.violations) == 2
        assert auditor.dropped == 3
        assert auditor.summary()["dropped_violations"] == 3

    def test_violation_renders_all_fields(self):
        v = Violation("mact_consistency", "chip.mact", 12.5, "bad bitmap")
        text = str(v)
        assert "mact_consistency" in text and "chip.mact" in text
        assert "12.5" in text and "bad bitmap" in text


class TestRequestConservation:
    def test_orphaned_request_flagged_at_end_of_run(self):
        auditor = collect_auditor()
        auditor.request_issued(MemRequest(addr=0, size=4, is_write=False), 0.0)
        auditor.end_of_run(100.0)
        assert any("still outstanding" in v.message
                   for v in auditor.violations)

    def test_balanced_requests_are_clean(self):
        auditor = collect_auditor()
        r = MemRequest(addr=0, size=4, is_write=False)
        auditor.request_issued(r, 0.0)
        auditor.request_completed(r, 10.0)
        auditor.end_of_run(100.0)
        assert auditor.clean

    def test_completion_without_issue_flagged(self):
        auditor = collect_auditor()
        r = MemRequest(addr=0, size=4, is_write=False)
        auditor.request_completed(r, 10.0)
        assert any("never" in v.message for v in auditor.violations)

    def test_double_issue_flagged(self):
        auditor = collect_auditor()
        r = MemRequest(addr=0, size=4, is_write=False)
        auditor.request_issued(r, 0.0)
        auditor.request_issued(r, 1.0)
        assert any("issued twice" in v.message for v in auditor.violations)

    def test_end_of_run_is_idempotent(self):
        auditor = collect_auditor()
        auditor.request_issued(MemRequest(addr=0, size=4, is_write=False), 0.0)
        auditor.end_of_run(100.0)
        n = len(auditor.violations)
        auditor.end_of_run(200.0)
        assert len(auditor.violations) == n


class TestTraceTiling:
    def _traced_request(self):
        r = MemRequest(addr=0, size=4, is_write=False, issue_time=0.0)
        r.start_trace()
        return r

    def test_gap_free_chain_is_clean(self):
        auditor = collect_auditor()
        r = self._traced_request()
        r.trace.advance("issue", "core0", 0.0)
        r.trace.advance("ring", "noc", 3.0)
        r.trace.close(10.0)
        auditor.request_completed(r, 10.0)
        assert all(v.checker != "trace_tiling" for v in auditor.violations)

    def test_gap_in_chain_flagged(self):
        auditor = collect_auditor(request_conservation=False)
        r = self._traced_request()
        r.trace.advance("issue", "core0", 0.0)
        r.trace.hops[-1].exit = 2.0          # close early: 1-cycle hole
        r.trace.advance("ring", "noc", 3.0)
        r.trace.hops[-1].exit = 10.0
        auditor.request_completed(r, 10.0)
        assert any("gap" in v.message for v in auditor.violations)

    def test_open_hop_at_completion_flagged(self):
        auditor = collect_auditor(request_conservation=False)
        r = self._traced_request()
        r.trace.advance("issue", "core0", 0.0)   # never closed
        auditor.request_completed(r, 10.0)
        assert any("still open" in v.message for v in auditor.violations)

    def test_last_exit_must_match_completion(self):
        auditor = collect_auditor(request_conservation=False)
        r = self._traced_request()
        r.trace.advance("issue", "core0", 0.0)
        r.trace.close(8.0)                       # completion says 10.0
        auditor.request_completed(r, 10.0)
        assert any("last hop exits" in v.message for v in auditor.violations)


class TestLinkConservation:
    def test_real_reservations_are_clean(self):
        auditor = collect_auditor()
        link = SlicedLink("l", width_bytes=8, slice_bytes=2)
        auditor.register_link(link)
        for now in (0.0, 0.0, 1.0):
            link.reserve(6, now)
        assert auditor.clean
        assert auditor.checks["link_conservation"] == 3

    def test_reservation_in_the_past_flagged(self):
        auditor = collect_auditor()
        link = SlicedLink("l", width_bytes=8, slice_bytes=2)
        auditor.link_reserved(link, 4, start=-1.0, finish=2.0, now=0.0)
        assert any("past" in v.message for v in auditor.violations)

    def test_oversubscribed_reservation_flagged(self):
        auditor = collect_auditor()
        link = SlicedLink("l", width_bytes=8, slice_bytes=2)
        auditor.link_reserved(link, 100, start=0.0, finish=1.0, now=0.0)
        assert any("byte-cycles" in v.message for v in auditor.violations)

    def test_unbalanced_flow_flagged_at_end_of_run(self):
        auditor = collect_auditor()

        class Fake:
            def __init__(self, value):
                self.value = value

        auditor.register_flow("noc", Fake(5), Fake(4))
        auditor.end_of_run(100.0)
        assert any("in-flight" in v.message for v in auditor.violations)

    def test_reservation_outliving_run_flagged(self):
        auditor = collect_auditor()
        link = SlicedLink("l", width_bytes=8, slice_bytes=2)
        auditor.register_link(link)
        link.reserve(8, 0.0)                     # busy until t=1
        auditor.end_of_run(0.5)
        assert any("outlives" in v.message for v in auditor.violations)

    def test_disabled_checker_registers_nothing(self):
        auditor = collect_auditor(link_conservation=False)
        link = SlicedLink("l", width_bytes=8, slice_bytes=2)
        auditor.register_link(link)
        assert link.audit_hook is None


class TestMactConsistency:
    def _audited_mact(self, **cfg):
        sim = Simulator()
        batches = []
        mact = MACT(sim, batches.append, MACTConfig(**cfg))
        auditor = collect_auditor()
        auditor.install(mact)
        return sim, mact, batches, auditor

    def test_real_mact_traffic_is_clean(self):
        sim, mact, batches, auditor = self._audited_mact(threshold_cycles=8)
        for off in range(0, 16, 4):
            mact.submit(MemRequest(addr=0x100 + off, size=4, is_write=False))
        sim.run()
        mact.flush_all()
        auditor.end_of_run(sim.now)
        assert auditor.clean
        assert auditor.checks["mact_consistency"] > 0

    def test_corrupted_bitmap_flagged_on_flush(self):
        sim, mact, batches, auditor = self._audited_mact(threshold_cycles=8)
        mact.submit(MemRequest(addr=0x100, size=4, is_write=False))
        line = next(iter(mact._lines.values()))
        line.bitmap |= 1 << 20                   # byte nobody asked for
        sim.run()
        assert any("popcount" in v.message for v in auditor.violations)

    def test_undrained_line_flagged_at_end_of_run(self):
        sim, mact, batches, auditor = self._audited_mact(threshold_cycles=500)
        mact.submit(MemRequest(addr=0x100, size=4, is_write=False))
        auditor.end_of_run(sim.now)              # no flush_all first
        assert any("still pending" in v.message for v in auditor.violations)


class TestInstall:
    def test_install_returns_self_and_registers(self):
        sim = Simulator()
        mact = MACT(sim, lambda b: None, MACTConfig())
        auditor = collect_auditor()
        assert auditor.install(mact) is auditor
        assert any(name.startswith("mact:") for name in auditor.installed)

    def test_summary_shape(self):
        auditor = collect_auditor()
        auditor.count("thread_fsm")
        summary = auditor.summary()
        assert summary["enabled"] is True
        assert summary["fail_fast"] is False
        assert summary["checks"] == {"thread_fsm": 1}
        assert summary["total_checks"] == 1
        assert summary["violations"] == []
        assert summary["clean"] is True
