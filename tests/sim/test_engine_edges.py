"""Edge cases of the DES kernel: signal re-entrancy, process corner cases,
and the same-cycle FIFO tie-break the whole repo's determinism rests on."""

import pytest

from repro.sim import EventSignal, Simulator


class TestFifoTieBreak:
    def test_now_is_float_from_the_start(self):
        sim = Simulator()
        assert isinstance(sim.now, float)
        sim.schedule(3, lambda: None)
        sim.run()
        assert isinstance(sim.now, float) and sim.now == 3.0

    def test_same_cycle_events_run_in_schedule_order(self):
        """Events landing on the same timestamp — whether scheduled as int,
        float, relative or absolute — must run in scheduling order."""
        sim = Simulator()
        order = []
        sim.schedule(2, order.append, "int-delay")
        sim.schedule(2.0, order.append, "float-delay")
        sim.schedule_at(2, order.append, "absolute")
        sim.schedule(1.5, lambda: sim.schedule(0.5, order.append, "nested"))
        sim.run()
        assert order == ["int-delay", "float-delay", "absolute", "nested"]

    def test_processes_and_callbacks_interleave_deterministically(self):
        """The regression pin: a process sleeping to time T and callbacks at
        T keep their relative scheduling order, repeatably."""

        def trial():
            sim = Simulator()
            order = []

            def proc(tag):
                yield 5
                order.append(tag)

            sim.spawn(proc("p1"))
            sim.schedule(5, order.append, "cb1")
            sim.spawn(proc("p2"))
            sim.schedule(5.0, order.append, "cb2")
            sim.run()
            return order

        runs = [trial() for _ in range(5)]
        assert all(r == runs[0] for r in runs)
        # the callbacks were enqueued for t=5 at setup time; the processes
        # only re-enqueue their t=5 resume when their first step runs at
        # t=0, so the callbacks hold the earlier sequence numbers and win
        assert runs[0] == ["cb1", "cb2", "p1", "p2"]


class TestSignalEdgeCases:
    def test_rearm_during_fire_waits_for_next_fire(self):
        """A waiter that re-registers from inside its own callback must not
        be woken again by the fire that is currently dispatching."""
        sim = Simulator()
        sig = sim.signal("edge")
        wakes = []

        def waiter(payload):
            wakes.append(payload)
            sig.wait(waiter)          # re-arm while the fire is in flight

        sig.wait(waiter)
        sig.fire("first")
        sim.run()
        assert wakes == ["first"]
        sig.fire("second")
        sim.run()
        assert wakes == ["first", "second"]

    def test_fire_from_inside_fire_only_wakes_rearmed_waiters(self):
        sim = Simulator()
        sig = sim.signal()
        log = []

        def chain(payload):
            log.append(payload)
            if payload == "outer":
                sig.wait(chain)
                sig.fire("inner")     # nested fire while outer dispatches

        sig.wait(chain)
        sig.fire("outer")
        sim.run()
        assert log == ["outer", "inner"]
        assert sig.fire_count == 2

    def test_process_blocked_on_signal_fired_twice_wakes_once(self):
        sim = Simulator()
        sig = sim.signal()
        seen = []

        def proc():
            payload = yield sig
            seen.append(payload)

        sim.spawn(proc())
        sim.run()
        sig.fire("a")
        sig.fire("b")              # no waiters left: must be a no-op
        sim.run()
        assert seen == ["a"]


class TestProcessEdgeCases:
    def test_yield_already_finished_process_resumes_with_result(self):
        """Waiting on a process that already completed must not hang on a
        done_signal that will never fire again."""
        sim = Simulator()

        def quick():
            yield 1
            return "answer"

        resumed = []

        def outer():
            proc = sim.spawn(quick(), "quick")
            yield 10               # sleep past quick's completion
            result = yield proc    # quick finished at t=1
            resumed.append((sim.now, result))

        sim.spawn(outer(), "outer")
        sim.run()
        assert resumed == [(10.0, "answer")]

    def test_yield_finished_process_costs_zero_cycles(self):
        sim = Simulator()

        def instant():
            return 7
            yield                   # pragma: no cover

        def outer():
            proc = sim.spawn(instant(), "instant")
            yield 5
            before = sim.now
            value = yield proc
            assert sim.now == before
            return value

        out = sim.spawn(outer(), "outer")
        sim.run()
        assert out.result == 7

    def test_spawn_generator_that_returns_immediately(self):
        """A generator exhausted on its first step finishes cleanly and
        fires its done_signal with the return value."""
        sim = Simulator()

        def empty():
            return 99
            yield                   # pragma: no cover

        proc = sim.spawn(empty(), "empty")
        results = []
        proc.done_signal.wait(results.append)
        sim.run()
        assert proc.finished and proc.result == 99
        assert results == [99]

    def test_done_signal_after_finish_does_not_refire(self):
        sim = Simulator()

        def worker():
            yield 2

        proc = sim.spawn(worker())
        sim.run()
        assert proc.finished
        late = []
        proc.done_signal.wait(late.append)
        sim.run()
        assert late == []           # the signal fired before we subscribed
