"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5, order.append, "b")
    sim.schedule(1, order.append, "a")
    sim.schedule(9, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 9


def test_same_time_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.schedule(3, order.append, tag)
    sim.run()
    assert order == list(range(10))


def test_zero_delay_event_runs_at_current_time():
    sim = Simulator()
    seen = []
    sim.schedule(2, lambda: sim.schedule(0, seen.append, sim.now))
    sim.run()
    assert seen == [2]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(7, seen.append, "x")
    sim.run()
    assert seen == ["x"] and sim.now == 7


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(3, lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(4, seen.append, "early")
    sim.schedule(10, seen.append, "late")
    sim.run(until=6)
    assert seen == ["early"]
    assert sim.now == 6            # clock advanced to the horizon
    sim.run()
    assert seen == ["early", "late"]


def test_run_max_events():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(i, seen.append, i)
    executed = sim.run(max_events=2)
    assert executed == 2 and seen == [0, 1]


def test_step_executes_single_event():
    sim = Simulator()
    seen = []
    sim.schedule(1, seen.append, "a")
    sim.schedule(2, seen.append, "b")
    assert sim.step() is True
    assert seen == ["a"]
    assert sim.step() is True
    assert sim.step() is False


def test_peek_and_pending():
    sim = Simulator()
    assert sim.peek() is None and sim.pending() == 0
    sim.schedule(3, lambda: None)
    assert sim.peek() == 3 and sim.pending() == 1


def test_events_executed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_executed == 4


def test_process_sleeps_for_yielded_delay():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield 10
        times.append(sim.now)
        yield 5
        times.append(sim.now)

    sim.spawn(proc(), "p")
    sim.run()
    assert times == [0, 10, 15]


def test_process_result_and_done_signal():
    sim = Simulator()

    def worker():
        yield 3
        return 42

    proc = sim.spawn(worker(), "w")
    results = []
    proc.done_signal.wait(results.append)
    sim.run()
    assert proc.finished and proc.result == 42
    assert results == [42]


def test_process_waits_on_signal_and_receives_payload():
    sim = Simulator()
    sig = sim.signal("data-ready")
    got = []

    def consumer():
        payload = yield sig
        got.append((sim.now, payload))

    def producer():
        yield 20
        sig.fire("hello")

    sim.spawn(consumer(), "c")
    sim.spawn(producer(), "p")
    sim.run()
    assert got == [(20, "hello")]


def test_process_waits_on_another_process():
    sim = Simulator()
    log = []

    def inner():
        yield 7
        log.append("inner-done")
        return "payload"

    def outer():
        proc = sim.spawn(inner(), "inner")
        yield proc
        log.append(("outer-resumed", sim.now))

    sim.spawn(outer(), "outer")
    sim.run()
    assert log == ["inner-done", ("outer-resumed", 7)]


def test_process_negative_yield_raises():
    sim = Simulator()

    def bad():
        yield -5

    sim.spawn(bad(), "bad")
    with pytest.raises(SimulationError):
        sim.run()


def test_process_bad_yield_type_raises():
    sim = Simulator()

    def bad():
        yield "nope"

    sim.spawn(bad(), "bad")
    with pytest.raises(SimulationError):
        sim.run()


def test_signal_wakes_only_current_waiters():
    sim = Simulator()
    sig = sim.signal()
    hits = []
    sig.wait(lambda _: hits.append(1))
    assert sig.fire() == 1
    # late subscriber needs the next fire
    sig.wait(lambda _: hits.append(2))
    sim.run()
    assert hits == [1]
    sig.fire()
    sim.run()
    assert hits == [1, 2]


def test_signal_fire_count_and_payload():
    sim = Simulator()
    sig = sim.signal("s")
    sig.fire("a")
    sig.fire("b")
    assert sig.fire_count == 2 and sig.last_payload == "b"
