"""Unit and property tests for the statistics primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import Accumulator, Counter, Histogram, StatsRegistry, TimeWeighted


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("hits")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_reset(self):
        c = Counter("hits")
        c.inc(3)
        c.reset()
        assert c.value == 0

    def test_snapshot(self):
        c = Counter("hits")
        c.inc(2)
        assert c.snapshot() == {"hits": 2}


class TestAccumulator:
    def test_empty(self):
        a = Accumulator("lat")
        assert a.mean == 0.0 and a.count == 0 and a.stddev == 0.0

    def test_mean_min_max(self):
        a = Accumulator("lat")
        for v in [2.0, 4.0, 6.0]:
            a.add(v)
        assert a.mean == pytest.approx(4.0)
        assert a.min == 2.0 and a.max == 6.0 and a.total == 12.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_matches_reference_statistics(self, samples):
        a = Accumulator("x")
        for s in samples:
            a.add(s)
        ref_mean = sum(samples) / len(samples)
        assert a.mean == pytest.approx(ref_mean, rel=1e-9, abs=1e-6)
        assert a.min == min(samples) and a.max == max(samples)
        ref_var = sum((s - ref_mean) ** 2 for s in samples) / len(samples)
        assert a.variance == pytest.approx(ref_var, rel=1e-6, abs=1e-3)


class TestHistogram:
    def test_binning(self):
        h = Histogram("gran", [2, 4, 8])
        for size, expected_bin in [(1, 0), (2, 0), (3, 1), (4, 1), (8, 2), (9, 3)]:
            h.add(size)
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6

    def test_fractions_sum_to_one(self):
        h = Histogram("g", [2, 4])
        for v in [1, 3, 5, 7]:
            h.add(v)
        assert sum(h.fractions()) == pytest.approx(1.0)

    def test_weighted_add(self):
        h = Histogram("g", [10])
        h.add(5, weight=3)
        assert h.counts == [3, 0] and h.count == 3

    def test_mean(self):
        h = Histogram("g", [10])
        h.add(4)
        h.add(8)
        assert h.mean == pytest.approx(6.0)

    def test_labels(self):
        h = Histogram("g", [2, 4])
        assert h.bin_labels() == ["<=2", "(2,4]", ">4"]

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", [4, 2])

    @given(st.lists(st.integers(1, 64), min_size=1, max_size=100))
    def test_total_count_conserved(self, samples):
        h = Histogram("g", [2, 4, 8, 16, 32])
        for s in samples:
            h.add(s)
        assert h.count == len(samples)
        assert sum(h.counts) == len(samples)


class TestTimeWeighted:
    def test_constant_level(self):
        tw = TimeWeighted("util", initial=0.5)
        assert tw.average(10) == pytest.approx(0.5)

    def test_step_change(self):
        tw = TimeWeighted("util")
        tw.set(1.0, 5)       # 0 for [0,5), 1 for [5,10)
        assert tw.average(10) == pytest.approx(0.5)

    def test_adjust_tracks_max(self):
        tw = TimeWeighted("q")
        tw.adjust(+3, 2)
        tw.adjust(-1, 4)
        assert tw.level == 2 and tw.max_level == 3

    def test_time_must_not_go_backwards(self):
        tw = TimeWeighted("q")
        tw.set(1, 5)
        with pytest.raises(ValueError):
            tw.set(2, 3)


class TestStatsRegistry:
    def test_register_and_dump(self):
        reg = StatsRegistry()
        c = reg.counter("core0.instrs")
        h = reg.histogram("core0.gran", [4])
        c.inc(7)
        h.add(2)
        dump = reg.dump()
        assert dump["core0.instrs"] == 7
        assert dump["core0.gran.count"] == 1

    def test_duplicate_name_rejected(self):
        reg = StatsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.counter("x")

    def test_contains_and_names(self):
        reg = StatsRegistry()
        reg.counter("b")
        reg.accumulator("a")
        assert "a" in reg and "b" in reg
        assert reg.names() == ["a", "b"]

    def test_get(self):
        reg = StatsRegistry()
        c = reg.counter("x")
        assert reg.get("x") is c
