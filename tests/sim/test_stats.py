"""Unit and property tests for the statistics primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    Accumulator,
    Counter,
    Histogram,
    StatsRegistry,
    StatsScope,
    TimeWeighted,
    nest_flat_stats,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("hits")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_reset(self):
        c = Counter("hits")
        c.inc(3)
        c.reset()
        assert c.value == 0

    def test_snapshot(self):
        c = Counter("hits")
        c.inc(2)
        assert c.snapshot() == {"hits": 2}


class TestAccumulator:
    def test_empty(self):
        a = Accumulator("lat")
        assert a.mean == 0.0 and a.count == 0 and a.stddev == 0.0

    def test_mean_min_max(self):
        a = Accumulator("lat")
        for v in [2.0, 4.0, 6.0]:
            a.add(v)
        assert a.mean == pytest.approx(4.0)
        assert a.min == 2.0 and a.max == 6.0 and a.total == 12.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_matches_reference_statistics(self, samples):
        a = Accumulator("x")
        for s in samples:
            a.add(s)
        ref_mean = sum(samples) / len(samples)
        assert a.mean == pytest.approx(ref_mean, rel=1e-9, abs=1e-6)
        assert a.min == min(samples) and a.max == max(samples)
        ref_var = sum((s - ref_mean) ** 2 for s in samples) / len(samples)
        assert a.variance == pytest.approx(ref_var, rel=1e-6, abs=1e-3)


class TestHistogram:
    def test_binning(self):
        h = Histogram("gran", [2, 4, 8])
        for size, expected_bin in [(1, 0), (2, 0), (3, 1), (4, 1), (8, 2), (9, 3)]:
            h.add(size)
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6

    def test_fractions_sum_to_one(self):
        h = Histogram("g", [2, 4])
        for v in [1, 3, 5, 7]:
            h.add(v)
        assert sum(h.fractions()) == pytest.approx(1.0)

    def test_weighted_add(self):
        h = Histogram("g", [10])
        h.add(5, weight=3)
        assert h.counts == [3, 0] and h.count == 3

    def test_mean(self):
        h = Histogram("g", [10])
        h.add(4)
        h.add(8)
        assert h.mean == pytest.approx(6.0)

    def test_labels(self):
        h = Histogram("g", [2, 4])
        assert h.bin_labels() == ["<=2", "(2,4]", ">4"]

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", [4, 2])

    @given(st.lists(st.integers(1, 64), min_size=1, max_size=100))
    def test_total_count_conserved(self, samples):
        h = Histogram("g", [2, 4, 8, 16, 32])
        for s in samples:
            h.add(s)
        assert h.count == len(samples)
        assert sum(h.counts) == len(samples)


class TestTimeWeighted:
    def test_constant_level(self):
        tw = TimeWeighted("util", initial=0.5)
        assert tw.average(10) == pytest.approx(0.5)

    def test_step_change(self):
        tw = TimeWeighted("util")
        tw.set(1.0, 5)       # 0 for [0,5), 1 for [5,10)
        assert tw.average(10) == pytest.approx(0.5)

    def test_adjust_tracks_max(self):
        tw = TimeWeighted("q")
        tw.adjust(+3, 2)
        tw.adjust(-1, 4)
        assert tw.level == 2 and tw.max_level == 3

    def test_time_must_not_go_backwards(self):
        tw = TimeWeighted("q")
        tw.set(1, 5)
        with pytest.raises(ValueError):
            tw.set(2, 3)


class TestStatsRegistry:
    def test_register_and_dump(self):
        reg = StatsRegistry()
        c = reg.counter("core0.instrs")
        h = reg.histogram("core0.gran", [4])
        c.inc(7)
        h.add(2)
        dump = reg.dump()
        assert dump["core0.instrs"] == 7
        assert dump["core0.gran.count"] == 1

    def test_duplicate_name_rejected(self):
        reg = StatsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.counter("x")

    def test_contains_and_names(self):
        reg = StatsRegistry()
        reg.counter("b")
        reg.accumulator("a")
        assert "a" in reg and "b" in reg
        assert reg.names() == ["a", "b"]

    def test_get(self):
        reg = StatsRegistry()
        c = reg.counter("x")
        assert reg.get("x") is c


class TestNestedDump:
    def test_nest_splits_dotted_names(self):
        nested = nest_flat_stats({
            "chip.subring0.mact.requests_in": 5,
            "chip.subring0.mact.batches_out": 2,
            "chip.noc.delivered": 9,
        })
        assert nested == {
            "chip": {
                "subring0": {"mact": {"requests_in": 5, "batches_out": 2}},
                "noc": {"delivered": 9},
            }
        }

    def test_histogram_bin_labels_stay_atomic(self):
        # "(2,4.5]" contains a dot that must not split into path segments
        nested = nest_flat_stats({
            "chip.gran.count": 3,
            "chip.gran[<=2]": 0.5,
            "chip.gran[(2,4.5]]": 0.5,
        })
        chip = nested["chip"]
        assert chip["gran"] == {"count": 3}
        assert chip["gran[<=2]"] == 0.5 and chip["gran[(2,4.5]]"] == 0.5

    def test_leaf_and_prefix_collision_uses_value_key(self):
        # "lat" is both a scalar and a prefix of "lat.count" — order-independent
        for flat in ({"a.lat": 1.0, "a.lat.count": 2},
                     {"a.lat.count": 2, "a.lat": 1.0}):
            nested = nest_flat_stats(dict(flat))
            assert nested["a"]["lat"] == {"_value": 1.0, "count": 2}

    def test_registry_dump_nested_matches_flat(self):
        reg = StatsRegistry()
        reg.counter("chip.core0.retired").inc(11)
        reg.counter("chip.noc.delivered").inc(3)
        assert reg.dump_nested() == nest_flat_stats(reg.dump())
        assert reg.dump_nested()["chip"]["core0"]["retired"] == 11


class TestStatsScope:
    def test_counter_registers_under_prefix(self):
        reg = StatsRegistry()
        scope = reg.scope("chip.subring0.mact")
        c = scope.counter("requests_in")
        c.inc(4)
        assert reg.dump()["chip.subring0.mact.requests_in"] == 4
        assert c.name == "chip.subring0.mact.requests_in"

    def test_nested_scopes_compose(self):
        reg = StatsRegistry()
        chip = StatsScope(reg, "chip")
        mact = chip.scope("subring1").scope("mact")
        assert mact.qualify("x") == "chip.subring1.mact.x"
        mact.accumulator("latency").add(2.0)
        assert reg.dump()["chip.subring1.mact.latency.mean"] == 2.0

    def test_empty_prefix_is_transparent(self):
        reg = StatsRegistry()
        scope = StatsScope(reg)
        scope.counter("free").inc()
        assert reg.dump()["free"] == 1

    def test_register_qualifies_external_stat(self):
        reg = StatsRegistry()
        scope = reg.scope("mem")
        h = Histogram("gran", [4])
        scope.register(h)
        h.add(3)
        assert h.name == "mem.gran"
        assert reg.dump()["mem.gran.count"] == 1

    def test_scope_collisions_still_rejected(self):
        reg = StatsRegistry()
        reg.scope("chip").counter("x")
        with pytest.raises(ValueError):
            reg.scope("chip").counter("x")
