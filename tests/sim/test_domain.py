"""Unit tests for the shardable time-domain layer (repro.sim.domain).

The quantum-boundary cases matter most: events landing exactly on a
window edge, zero-latency boundary wires, and FIFO tie-breaks across
domains are where a conservative-sync engine silently diverges from the
serial reference if anything is off.
"""

import pytest

from repro.errors import ShardingError, SimulationError
from repro.sim.domain import (
    AccumulatorTap,
    BoundaryChannel,
    CounterTap,
    DomainPlan,
    ShardedSimulator,
    SimDomain,
    merge_tap_samples,
    replay_taps,
)
from repro.sim.engine import Simulator, _swap_active
from repro.sim.stats import StatsRegistry

QUANTA = (0, 1, 16)


def two_domain_plan(latency=16.0, shared=False):
    cell = [0] if shared else None
    a = SimDomain("a", 0, shared_seq=cell)
    b = SimDomain("b", 1, shared_seq=cell)
    plan = DomainPlan([a, b])
    ab = plan.channel("a->b", a, b, latency)
    ba = plan.channel("b->a", b, a, latency)
    return plan, a, b, ab, ba


# -- plan / channel basics ---------------------------------------------------


def test_plan_rejects_duplicate_domain_indices():
    with pytest.raises(ShardingError):
        DomainPlan([SimDomain("a", 0), SimDomain("b", 0)])


def test_default_quantum_is_min_cross_engine_latency():
    plan, a, b, *_ = two_domain_plan(latency=16.0)
    plan.channel("fast", a, b, 3.0)
    assert plan.default_quantum() == 3.0


def test_validate_quantum_rejects_larger_than_latency():
    plan, *_ = two_domain_plan(latency=4.0)
    with pytest.raises(ShardingError):
        plan.validate_quantum(5.0)
    plan.validate_quantum(4.0)       # exactly the latency is safe
    plan.validate_quantum(0)         # instant mode always is


def test_zero_latency_cross_engine_channel_rejected_for_positive_quantum():
    plan, *_ = two_domain_plan(latency=0.0)
    with pytest.raises(ShardingError, match="absorb"):
        plan.validate_quantum(1.0)


def test_same_engine_channel_is_absorbed_not_queued():
    # a zero-latency wire between domains on ONE engine is legal: the
    # channel degenerates to a plain schedule() on the shared engine
    cell = [0]
    sim = Simulator()
    a = SimDomain("a", 0, sim=sim)
    b = SimDomain("b", 1, sim=sim)
    plan = DomainPlan([a, b])
    ch = plan.channel("a->b", a, b, 0.0)
    assert not ch.crosses_engines
    fired = []
    ch.cross(fired.append, "x")
    assert ch.queue == []            # absorbed, nothing buffered
    sim.run()
    assert fired == ["x"]


def test_cross_latency_override_below_declared_minimum_rejected():
    plan, a, b, ab, _ = two_domain_plan(latency=4.0)
    with pytest.raises(ShardingError):
        ab.cross(lambda: None, latency=2.0)


def test_boundary_message_into_past_raises():
    plan, a, b, *_ = two_domain_plan()
    b.sim.now = 10.0
    with pytest.raises(ShardingError, match="past"):
        b.sim.schedule_boundary(5.0, (5.0, 0, 1), lambda: None, ())


# -- windowed execution ------------------------------------------------------


@pytest.mark.parametrize("quantum", QUANTA)
def test_cross_domain_ping_pong_matches_serial_times(quantum):
    """A->B->A message chain lands at the exact serial delivery times."""
    lat = 16.0
    plan, a, b, ab, ba = two_domain_plan(latency=lat)
    log = []

    def pong():
        log.append(("pong", b.sim.now))
        ba.cross(done)

    def done():
        log.append(("done", a.sim.now))

    def ping():
        log.append(("ping", a.sim.now))
        ab.cross(pong)

    a.sim.schedule(3.0, ping)
    ShardedSimulator(plan, quantum).run()
    assert log == [("ping", 3.0), ("pong", 3.0 + lat), ("done", 3.0 + 2 * lat)]


@pytest.mark.parametrize("quantum", QUANTA)
def test_event_exactly_on_quantum_edge_runs_in_next_window(quantum):
    """Half-open windows: an edge event runs once, at its exact time."""
    plan, a, b, *_ = two_domain_plan()
    hits = []
    # first event at 0 pins the first window edge at 0 + quantum; the
    # second event lands exactly on that edge
    a.sim.schedule(0.0, lambda: hits.append(a.sim.now))
    a.sim.schedule(float(quantum), lambda: hits.append(a.sim.now))
    a.sim.schedule(float(quantum), lambda: hits.append(a.sim.now))
    ShardedSimulator(plan, quantum).run()
    assert hits == [0.0, float(quantum), float(quantum)]


@pytest.mark.parametrize("quantum", QUANTA)
def test_fifo_tie_break_across_domains_follows_arrival_order(quantum):
    """Same-instant events across serially-merged domains run in the
    global schedule-call order, exactly like one serial engine."""
    cell = [0]
    a = SimDomain("a", 0, shared_seq=cell)
    b = SimDomain("b", 1, shared_seq=cell)
    plan = DomainPlan([a, b])
    plan.channel("a->b", a, b, 16.0)
    order = []
    # interleave the scheduling calls across the two engines; all fire
    # at t=5 and must replay in arrival order
    a.sim.schedule(5.0, order.append, "a1")
    b.sim.schedule(5.0, order.append, "b1")
    a.sim.schedule(5.0, order.append, "a2")
    b.sim.schedule(5.0, order.append, "b2")
    ShardedSimulator(plan, quantum).run()
    assert order == ["a1", "b1", "a2", "b2"]


@pytest.mark.parametrize("quantum", QUANTA)
def test_zero_delay_events_run_before_later_times(quantum):
    """The due-lane (delay=0) semantics survive windowing."""
    plan, a, b, *_ = two_domain_plan()
    order = []

    def first():
        order.append("first")
        a.sim.schedule(0, order.append, "chained")

    a.sim.schedule(2.0, first)
    b.sim.schedule(2.5, order.append, "later")
    ShardedSimulator(plan, quantum).run()
    assert order == ["first", "chained", "later"]


def test_run_until_caps_execution_and_clock():
    plan, a, b, *_ = two_domain_plan()
    hits = []
    a.sim.schedule(5.0, hits.append, "early")
    a.sim.schedule(50.0, hits.append, "late")
    ShardedSimulator(plan, 1.0).run(until=10.0)
    assert hits == ["early"]
    assert a.sim.now == 10.0 and b.sim.now == 10.0


def test_quiesce_hooks_fire_once_at_stop_time():
    plan, a, b, *_ = two_domain_plan()
    seen = []
    a.sim.schedule(4.0, lambda: None)

    def hook():
        seen.append((a.sim.now, b.sim.now))
        a.sim.schedule(0, lambda: seen.append("hook-event"))

    ShardedSimulator(plan, 1.0).run(quiesce_hooks=[hook])
    assert seen == [(4.0, 4.0), "hook-event"]


def test_domain_engine_refuses_direct_run():
    plan, a, *_ = two_domain_plan()
    with pytest.raises(SimulationError):
        a.sim.run()


# -- stat taps ---------------------------------------------------------------


def test_taps_replay_in_time_then_domain_order():
    registry = StatsRegistry()
    acc = registry.accumulator("lat")
    tap = AccumulatorTap(acc)
    a = SimDomain("a", 0)
    b = SimDomain("b", 1)
    # record out of order across domains: (t=2, dom 1) before (t=1, dom 0)
    for dom, t, v in ((b, 2.0, 30.0), (a, 1.0, 10.0), (a, 2.0, 20.0)):
        dom.sim.now = t
        prev = _swap_active(dom.sim)
        try:
            tap.add(v)
        finally:
            _swap_active(prev)
    merged = tap.merged()
    assert [v for _, _, _, v in merged] == [10.0, 20.0, 30.0]
    replay_taps([tap])
    assert acc.count == 3
    assert acc.mean == pytest.approx(20.0)


def test_counter_tap_replays_total():
    registry = StatsRegistry()
    ctr = registry.counter("hits")
    tap = CounterTap(ctr)
    sim = SimDomain("a", 0).sim
    prev = _swap_active(sim)
    try:
        tap.inc()
        tap.inc(2)
    finally:
        _swap_active(prev)
    tap.replay()
    assert ctr.value == 3


def test_merge_tap_samples_rejects_duplicate_domain_streams():
    with pytest.raises(ShardingError):
        merge_tap_samples([{0: [(1.0, 1.0)]}, {0: [(2.0, 2.0)]}])


def test_merge_tap_samples_orders_by_time_domain_arrival():
    entries = merge_tap_samples([
        {1: [(2.0, 5.0), (2.0, 6.0)]},
        {0: [(2.0, 1.0)], 2: [(1.0, 9.0)]},
    ])
    assert [v for _, _, _, v in entries] == [9.0, 1.0, 5.0, 6.0]
