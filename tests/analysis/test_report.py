"""Report-builder tests."""

from pathlib import Path

from repro.analysis import build_report, collect_results
from repro.analysis.report import EXPERIMENT_ORDER


def test_collect_results(tmp_path):
    (tmp_path / "fig21_scheduler.txt").write_text("table here\n")
    (tmp_path / "notes.md").write_text("ignored")
    results = collect_results(tmp_path)
    assert results == {"fig21_scheduler": "table here"}


def test_collect_missing_dir(tmp_path):
    assert collect_results(tmp_path / "nope") == {}


def test_build_report_includes_present_and_flags_missing(tmp_path):
    (tmp_path / "fig21_scheduler.txt").write_text("EXIT TIMES TABLE\n")
    report = build_report(tmp_path)
    assert "EXIT TIMES TABLE" in report
    assert "not yet generated" in report           # the other sections
    # every canonical experiment has a section heading
    for _stem, heading in EXPERIMENT_ORDER:
        assert heading in report


def test_build_report_appends_unknown_results(tmp_path):
    (tmp_path / "custom_experiment.txt").write_text("CUSTOM\n")
    report = build_report(tmp_path)
    assert "custom_experiment" in report and "CUSTOM" in report


def test_cli_report_to_file(tmp_path, capsys):
    from repro.cli import main

    results = tmp_path / "results"
    results.mkdir()
    (results / "fig22_comparison.txt").write_text("SPEEDUPS\n")
    out_file = tmp_path / "report.md"
    rc = main(["report", "--results-dir", str(results),
               "--output", str(out_file)])
    assert rc == 0
    assert "SPEEDUPS" in out_file.read_text()


def test_cli_report_to_stdout(tmp_path, capsys):
    from repro.cli import main

    rc = main(["report", "--results-dir", str(tmp_path)])
    assert rc == 0
    assert "experiment report" in capsys.readouterr().out
