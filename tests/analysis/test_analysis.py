"""Analysis helper tests."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    crossover_index,
    geometric_mean,
    normalize,
    render_series,
    render_table,
    speedup,
)
from repro.errors import ConfigError


class TestMetrics:
    def test_speedup(self):
        assert speedup(20, 2) == 10

    def test_speedup_zero_baseline(self):
        with pytest.raises(ConfigError):
            speedup(1, 0)

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([10.11]) == pytest.approx(10.11)

    def test_geometric_mean_validation(self):
        with pytest.raises(ConfigError):
            geometric_mean([])
        with pytest.raises(ConfigError):
            geometric_mean([1, -1])

    @given(st.lists(st.floats(0.1, 100), min_size=1, max_size=20))
    def test_geomean_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) <= g * 1.0001 and g <= max(values) * 1.0001

    def test_normalize(self):
        assert normalize([2, 4, 8], 4) == [0.5, 1.0, 2.0]
        with pytest.raises(ConfigError):
            normalize([1], 0)

    def test_crossover(self):
        assert crossover_index([1, 2, 5], [3, 3, 3]) == 2
        assert crossover_index([1, 1], [3, 3]) == -1
        with pytest.raises(ConfigError):
            crossover_index([1], [1, 2])


class TestTables:
    def test_render_table_aligns(self):
        out = render_table(["name", "value"], [["kmp", 1.5], ["rnc", 10]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert "kmp" in lines[2] and "1.5" in lines[2]

    def test_render_table_title(self):
        out = render_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_float_formatting(self):
        out = render_table(["x"], [[0.000123], [12345.6], [1.5]])
        assert "0.000123" in out and "1.23e+04" in out and "1.5" in out

    def test_render_series(self):
        out = render_series("threads", [1, 2],
                            {"smarco": [10, 20], "xeon": [5, 6]})
        lines = out.splitlines()
        assert lines[0].split() == ["threads", "smarco", "xeon"]
        assert lines[2].split() == ["1", "10", "5"]
