"""The shared percentile module: exact nearest rank + streaming sketch."""

import random

import pytest

from repro.analysis.quantiles import (
    DEFAULT_QUANTILES,
    ReservoirQuantiles,
    nearest_rank_index,
    quantile,
    quantiles,
    thin_sorted,
)
from repro.errors import AnalysisError
from repro.sim.rng import RngTree


class TestNearestRank:
    def test_ceil_based_indices(self):
        # p99 of 10 samples is the maximum: no smaller observation
        # bounds 99% of the data
        assert nearest_rank_index(10, 0.99) == 9
        assert nearest_rank_index(100, 0.99) == 98
        assert nearest_rank_index(1000, 0.99) == 989
        assert nearest_rank_index(10, 0.50) == 4
        assert nearest_rank_index(5, 1.0) == 4

    def test_regression_floor_formula(self):
        # the bug this module replaced: int(q * (n - 1)) truncates down,
        # reporting ~p89 of a 10-sample run as "p99"
        n, q = 10, 0.99
        buggy = int(q * (n - 1))
        assert buggy == 8                       # what used to be reported
        assert nearest_rank_index(n, q) == 9    # what p99 actually is

    def test_single_sample(self):
        assert nearest_rank_index(1, 0.01) == 0
        assert nearest_rank_index(1, 0.999) == 0
        assert quantile([42.0], 0.99) == 42.0

    def test_small_n_everything_maps_into_range(self):
        for n in range(1, 120):
            for q in (0.01, 0.5, 0.95, 0.99, 0.999, 1.0):
                idx = nearest_rank_index(n, q)
                assert 0 <= idx < n
                # at least q of the sample lies at or below the index
                assert (idx + 1) / n >= q or idx == n - 1

    def test_quantile_sorts_unless_told_not_to(self):
        data = [5.0, 1.0, 9.0, 3.0]
        assert quantile(data, 0.5) == 3.0
        assert quantile(sorted(data), 0.5, is_sorted=True) == 3.0

    def test_quantiles_dict(self):
        data = list(range(1, 101))
        out = quantiles(data, DEFAULT_QUANTILES)
        assert out[0.50] == 50
        assert out[0.99] == 99
        assert out[0.999] == 100

    def test_errors(self):
        with pytest.raises(AnalysisError, match="empty"):
            quantile([], 0.5)
        with pytest.raises(AnalysisError, match="empty"):
            quantiles([], DEFAULT_QUANTILES)
        with pytest.raises(AnalysisError, match="in \\(0, 1\\]"):
            quantile([1.0], 0.0)
        with pytest.raises(AnalysisError, match="in \\(0, 1\\]"):
            quantile([1.0], 1.5)
        with pytest.raises(AnalysisError, match="non-empty"):
            nearest_rank_index(0, 0.5)


class TestThinSorted:
    def test_lossless_when_under_cap(self):
        data = sorted([3.0, 1.0, 2.0])
        assert thin_sorted(data, 8) == data

    def test_keeps_min_and_max(self):
        data = sorted(range(1000))
        thin = thin_sorted(data, 64)
        assert len(thin) == 64
        assert thin[0] == data[0]
        assert thin[-1] == data[-1]

    def test_preserves_quantile_structure(self):
        rng = random.Random(7)
        data = sorted(rng.expovariate(0.01) for _ in range(20_000))
        thin = thin_sorted(data, 512)
        for q in (0.5, 0.95, 0.99):
            exact = quantile(data, q, is_sorted=True)
            approx = quantile(thin, q, is_sorted=True)
            assert approx == pytest.approx(exact, rel=0.05)

    def test_cap_too_small(self):
        with pytest.raises(AnalysisError, match="cap >= 2"):
            thin_sorted([1.0, 2.0, 3.0], 1)


class TestReservoir:
    def test_exact_below_capacity(self):
        sketch = ReservoirQuantiles(capacity=100)
        data = [float(x) for x in range(50, 0, -1)]
        sketch.extend(data)
        assert sketch.exact
        assert len(sketch) == 50
        assert sketch.quantile(0.5) == quantile(data, 0.5)
        assert sketch.quantile(0.99) == quantile(data, 0.99)
        assert sketch.mean == pytest.approx(sum(data) / len(data))

    def test_streaming_agrees_with_exact_within_tolerance(self):
        rng = random.Random(123)
        data = [rng.expovariate(0.001) for _ in range(100_000)]
        sketch = ReservoirQuantiles(capacity=8192,
                                    rng=RngTree(9).stream("sketch"))
        sketch.extend(data)
        assert not sketch.exact
        assert len(sketch) == 8192
        for q in (0.5, 0.95, 0.99):
            assert sketch.quantile(q) == pytest.approx(
                quantile(data, q), rel=0.1)
        # the mean is tracked exactly regardless of sampling
        assert sketch.mean == pytest.approx(sum(data) / len(data))

    def test_deterministic_under_seeding(self):
        draw = random.Random(5)
        data = [draw.expovariate(1.0) for _ in range(30_000)]

        def run():
            sketch = ReservoirQuantiles(capacity=1024,
                                        rng=RngTree(4).stream("r"))
            sketch.extend(data)
            return sketch.quantiles((0.5, 0.99, 0.999))

        assert run() == run()

    def test_different_seeds_differ(self):
        draw = random.Random(5)
        data = [draw.expovariate(1.0) for _ in range(30_000)]

        def run(seed):
            sketch = ReservoirQuantiles(capacity=512,
                                        rng=RngTree(seed).stream("r"))
            sketch.extend(data)
            return sketch.quantiles((0.5, 0.99))

        assert run(1) != run(2)

    def test_empty_sketch_raises(self):
        sketch = ReservoirQuantiles(capacity=16)
        with pytest.raises(AnalysisError, match="empty sketch"):
            sketch.quantile(0.5)
        with pytest.raises(AnalysisError, match="empty sketch"):
            sketch.quantiles()

    def test_bad_capacity(self):
        with pytest.raises(AnalysisError, match="capacity"):
            ReservoirQuantiles(capacity=1)

    def test_thinned_payload(self):
        sketch = ReservoirQuantiles(capacity=64)
        sketch.extend(float(x) for x in range(40))
        assert sketch.thinned(512) == [float(x) for x in range(40)]
