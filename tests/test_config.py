"""Tests for the chip configuration dataclasses (paper Table 2 values)."""

from dataclasses import replace

import pytest

from repro.config import (
    MACTConfig,
    MemoryConfig,
    RingConfig,
    SchedulerConfig,
    SmarCoConfig,
    TCGConfig,
    smarco_default,
    smarco_scaled,
    xeon_default,
)
from repro.errors import ConfigError

KB = 1024
MB = 1024 * KB


class TestSmarCoDefaults:
    def test_paper_core_counts(self):
        cfg = smarco_default()
        assert cfg.total_cores == 256
        assert cfg.total_hw_threads == 2048          # Table 2: 2048 threads
        assert cfg.frequency_ghz == 1.5

    def test_paper_onchip_memory_totals(self):
        cfg = smarco_default()
        assert cfg.total_icache_bytes == 4 * MB      # Table 2: 4MB L1 I$
        assert cfg.total_dcache_bytes == 4 * MB      # Table 2: 4MB L1 D$
        assert cfg.total_spm_bytes == 32 * MB        # Table 2: 32MB SPM

    def test_paper_ring_widths(self):
        ring = smarco_default().ring
        assert ring.main_ring_bits == 512            # §3.3
        assert ring.sub_ring_bits == 256

    def test_paper_memory_bandwidth(self):
        mem = smarco_default().memory
        assert mem.peak_bandwidth_gbps == pytest.approx(136.5, rel=0.01)
        assert mem.total_bytes == 64 * 1024 ** 3     # Table 2: 64GB

    def test_tcg_paper_parameters(self):
        tcg = smarco_default().tcg
        assert tcg.issue_width == 4 and tcg.pipeline_depth == 8
        assert tcg.hw_threads == 8 and tcg.running_threads == 4
        assert tcg.icache_bytes == 16 * KB
        assert tcg.dcache_bytes == 16 * KB
        assert tcg.spm_bytes == 128 * KB


class TestScaledConfig:
    def test_scaled_preserves_core_geometry(self):
        cfg = smarco_scaled(sub_rings=4)
        assert cfg.total_cores == 64
        assert cfg.tcg == smarco_default().tcg

    def test_scaled_memory_channels_track_subrings(self):
        assert smarco_scaled(sub_rings=2).memory.channels == 2
        assert smarco_scaled(sub_rings=16).memory.channels == 4

    def test_single_subring(self):
        cfg = smarco_scaled(sub_rings=1, cores_per_sub_ring=4)
        assert cfg.total_cores == 4 and cfg.memory.channels == 1


class TestValidation:
    def test_running_exceeds_hw_threads(self):
        with pytest.raises(ConfigError):
            TCGConfig(hw_threads=4, running_threads=8).validate()

    def test_odd_thread_count_rejected(self):
        with pytest.raises(ConfigError):
            TCGConfig(hw_threads=7, running_threads=3).validate()

    def test_bad_slice_bytes(self):
        with pytest.raises(ConfigError):
            RingConfig(slice_bytes=3).validate()

    def test_mact_threshold_positive(self):
        with pytest.raises(ConfigError):
            MACTConfig(threshold_cycles=0).validate()

    def test_scheduler_policy_checked(self):
        with pytest.raises(ConfigError):
            SchedulerConfig(policy="random").validate()

    def test_zero_subrings_rejected(self):
        with pytest.raises(ConfigError):
            SmarCoConfig(sub_rings=0).validate()

    def test_channels_cannot_exceed_subrings(self):
        cfg = SmarCoConfig(sub_rings=2, memory=MemoryConfig(channels=4))
        with pytest.raises(ConfigError):
            cfg.validate()


class TestXeon:
    def test_paper_table2_values(self):
        xeon = xeon_default()
        assert xeon.cores == 24
        assert xeon.total_hw_threads == 48
        assert xeon.llc_bytes == 60 * MB
        assert xeon.memory_bandwidth_gbps == 85.0
        assert xeon.tdp_watts == 165.0

    def test_frozen(self):
        with pytest.raises(Exception):
            xeon_default().cores = 1

    def test_replace_for_sweeps(self):
        fast = replace(xeon_default(), frequency_ghz=3.0)
        assert fast.frequency_ghz == 3.0 and xeon_default().frequency_ghz == 2.2
