"""The calibrated cluster driver and its result record."""

import json

import pytest

from repro.chip.results import result_from_dict
from repro.config import smarco_scaled
from repro.errors import TrafficError
from repro.exp import RunRequest
from repro.traffic import TrafficRunResult, run_traffic, synthetic_calibration
from repro.traffic.cluster import (
    ChipCalibration,
    _bucket_bounds,
    calibrate_chip,
)


def _request(**overrides):
    base = dict(kind="traffic", workload="kmp", seed=0,
                traffic_requests=800, traffic_chips=2, traffic_load=0.8,
                traffic_instrs=400)
    base.update(overrides)
    return RunRequest(**base)


def _run(**overrides):
    calibration = overrides.pop("calibration", None) \
        or synthetic_calibration()
    return run_traffic(_request(**overrides), calibration=calibration)


class TestCalibration:
    def test_synthetic_is_mean_normalised(self):
        c = synthetic_calibration()
        mean = sum((lo + hi) / 2.0 * w for lo, hi, w in
                   zip(c.jitter_lo, c.jitter_hi, c.jitter_weights))
        assert mean == pytest.approx(1.0)
        assert sum(c.jitter_weights) == pytest.approx(1.0)
        assert c.source == "synthetic"

    def test_bucket_bounds_parsing(self):
        assert _bucket_bounds("<=8") == (0.0, 8.0)
        assert _bucket_bounds("(8,32]") == (8.0, 32.0)
        assert _bucket_bounds(">2048") == (2048.0, 8192.0)
        assert _bucket_bounds("weird") is None

    def test_malformed_calibration_rejected(self):
        with pytest.raises(TrafficError, match="context"):
            synthetic_calibration(contexts=0)
        with pytest.raises(TrafficError, match="CPI"):
            synthetic_calibration(cpi=0.0)
        with pytest.raises(TrafficError, match="malformed"):
            ChipCalibration(workload="x", contexts=4, subrings=2, cpi=1.0,
                            frequency_ghz=1.5, jitter_lo=(1.0, 2.0),
                            jitter_hi=(1.0,), jitter_weights=(1.0,))

    def test_measured_calibration_from_chip_run(self):
        request = _request(smarco_config=smarco_scaled(2, 2),
                           threads_per_core=2, instrs_per_thread=60)
        c = calibrate_chip(request)
        assert c.source == "measured"
        assert c.contexts == 2 * 2 * 2
        assert c.subrings == 2
        assert c.cpi > 0
        # jitter pooled from the hop histograms, mean-normalised
        mean = sum((lo + hi) / 2.0 * w for lo, hi, w in
                   zip(c.jitter_lo, c.jitter_hi, c.jitter_weights))
        assert mean == pytest.approx(1.0)
        # memoised: sweep points differing only in traffic axes share it
        again = calibrate_chip(request.replace(traffic_load=0.4,
                                               traffic_arrival="bursty"))
        assert again is c


class TestRunTraffic:
    def test_conserves_requests(self):
        result = _run()
        assert result.requests_completed == result.requests_total == 800
        assert sum(result.per_chip_served) == 800
        assert 0.0 <= result.home_hit_rate <= 1.0

    def test_deterministic_and_seed_sensitive(self):
        assert _run().to_dict() == _run().to_dict()
        assert _run(seed=1).to_dict() != _run(seed=2).to_dict()

    def test_latency_orders_and_slo_monotone(self):
        result = _run()
        assert result.p50_latency <= result.p95_latency \
            <= result.p99_latency <= result.p999_latency
        # a looser SLO target can never be violated more often
        assert list(result.slo_violations) == sorted(
            result.slo_violations, reverse=True)
        assert result.mean_latency >= result.mean_wait

    def test_load_increases_waiting(self):
        calm = _run(traffic_load=0.3)
        slammed = _run(traffic_load=2.0)
        assert slammed.mean_wait > calm.mean_wait
        assert slammed.p99_latency >= calm.p99_latency

    def test_balancer_is_not_a_label(self):
        lo = _run(traffic_load=1.5)
        rr = _run(traffic_load=1.5, traffic_balancer="round-robin")
        assert lo.to_dict() != rr.to_dict()

    def test_reservoir_mode_beyond_capacity(self):
        exact = _run()
        assert exact.quantile_mode == "exact"
        sketched = run_traffic(_request(), calibration=synthetic_calibration(),
                               reservoir_capacity=256)
        assert sketched.quantile_mode == "reservoir"
        assert len(sketched.latency_samples) <= 512
        # reservoir estimate stays in the neighbourhood of the exact one
        assert sketched.p50_latency == pytest.approx(
            exact.p50_latency, rel=0.25)

    def test_roundtrip_through_result_protocol(self):
        result = _run()
        data = json.loads(json.dumps(result.to_dict()))
        assert data["type"] == "TrafficRunResult"
        assert "throughput_rps" in data and "p99_latency_ms" in data
        rebuilt = result_from_dict(data)
        assert isinstance(rebuilt, TrafficRunResult)
        assert rebuilt == result
        assert isinstance(rebuilt.slo_targets, tuple)
        assert isinstance(rebuilt.latency_samples, tuple)
        # the round trip is stable: cache hits replay identical dicts
        assert rebuilt.to_dict() == result.to_dict()

    def test_latency_samples_cover_the_tail(self):
        result = _run()
        assert max(result.latency_samples) == result.p999_latency \
            or max(result.latency_samples) >= result.p999_latency

    def test_bad_inputs(self):
        with pytest.raises(TrafficError, match="chip"):
            _run(traffic_chips=0)
        with pytest.raises(TrafficError, match="load"):
            _run(traffic_load=0.0)
        with pytest.raises(TrafficError, match="SLO"):
            _run(traffic_slo=(0.0, 2.0))
