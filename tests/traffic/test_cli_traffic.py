"""CLI surface of the traffic layer."""

from repro.cli import main


def test_traffic_list(capsys):
    assert main(["traffic", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("poisson", "bursty", "diurnal",
                 "round-robin", "least-outstanding", "subring-aware"):
        assert name in out


def test_traffic_single_run(capsys):
    assert main(["traffic", "kmp", "--chips", "2", "--requests", "300",
                 "--instrs", "150", "--load", "0.8",
                 "--sub-rings", "2", "--cores", "2"]) == 0
    out = capsys.readouterr().out
    assert "p99 latency" in out
    assert "SLO" in out
    assert "home sub-ring hits" in out


def test_traffic_sweep_and_report(tmp_path, capsys):
    argv = ["sweep", "kmp", "--kind", "traffic",
            "--arrivals", "poisson", "bursty",
            "--balancers", "least-outstanding",
            "--loads", "0.5", "0.9",
            "--chips", "2", "--requests", "300",
            "--sub-rings", "2", "--cores", "2",
            "--out", str(tmp_path)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "4 points" in out
    assert "p99" in out

    # warm rerun replays every point from the cache bit-for-bit
    assert main(argv) == 0
    assert "4 cache hits" in capsys.readouterr().out

    assert main(["report", "--results-dir", str(tmp_path),
                 "--runs-dir", str(tmp_path / "runs")]) == 0
    report = capsys.readouterr().out
    assert "## Open-loop traffic" in report
    assert "p99.9" in report
