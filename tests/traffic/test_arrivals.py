"""Arrival processes: registry, determinism, rate fidelity."""

import pytest

from repro.errors import TrafficError
from repro.sim.rng import RngTree
from repro.traffic import (
    arrival_summaries,
    generate_requests,
    get_arrival,
    list_arrivals,
    register_arrival,
)


class TestRegistry:
    def test_three_processes_registered(self):
        names = list_arrivals()
        for expected in ("poisson", "bursty", "diurnal"):
            assert expected in names

    def test_unknown_arrival(self):
        with pytest.raises(TrafficError, match="unknown arrival"):
            get_arrival("tsunami")

    def test_duplicate_rejected(self):
        with pytest.raises(TrafficError, match="duplicate"):
            register_arrival("poisson", "again")(lambda *a: None)

    def test_summaries(self):
        cards = arrival_summaries()
        assert [c["name"] for c in cards] == list_arrivals()
        assert all(c["summary"] for c in cards)


def _times(name, seed, rate=0.01, n=500):
    return [t for t in get_arrival(name).build(RngTree(seed), rate, n)]


class TestProcesses:
    @pytest.mark.parametrize("name", list_arrivals())
    def test_deterministic_and_seed_sensitive(self, name):
        assert _times(name, 3) == _times(name, 3)
        assert _times(name, 3) != _times(name, 4)

    @pytest.mark.parametrize("name", list_arrivals())
    def test_monotone_nonnegative(self, name):
        times = _times(name, 0)
        assert len(times) == 500
        assert times[0] >= 0.0
        assert all(b >= a for a, b in zip(times, times[1:]))

    @pytest.mark.parametrize("name", list_arrivals())
    def test_long_run_rate_near_requested(self, name):
        rate, n = 0.02, 8000
        times = _times(name, 1, rate=rate, n=n)
        realised = n / times[-1]
        # 15% tolerance: bursty/diurnal converge slower than poisson
        assert realised == pytest.approx(rate, rel=0.15)

    def test_bursty_is_burstier_than_poisson(self):
        # squared-coefficient-of-variation of the gaps: 1 for Poisson,
        # substantially above 1 for the MMPP
        def scv(times):
            gaps = [b - a for a, b in zip(times, times[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / (mean * mean)

        poisson = scv(_times("poisson", 7, n=8000))
        bursty = scv(_times("bursty", 7, n=8000))
        assert poisson == pytest.approx(1.0, rel=0.3)
        assert bursty > poisson * 1.5

    @pytest.mark.parametrize("name", list_arrivals())
    def test_bad_inputs(self, name):
        build = get_arrival(name).build
        with pytest.raises(TrafficError, match="rate"):
            list(build(RngTree(0), 0.0, 10))
        with pytest.raises(TrafficError, match="request"):
            list(build(RngTree(0), 1.0, 0))


class TestGenerateRequests:
    def test_flows_independent_of_arrival_process(self):
        a = generate_requests("poisson", RngTree(5), 0.01, 200, 400)
        b = generate_requests("bursty", RngTree(5), 0.01, 200, 400)
        assert [r.flow for r in a] == [r.flow for r in b]
        assert [r.arrival for r in a] != [r.arrival for r in b]

    def test_request_fields(self):
        reqs = generate_requests("poisson", RngTree(0), 0.01, 50, 321)
        assert [r.req_id for r in reqs] == list(range(50))
        assert all(r.instrs == 321 for r in reqs)
        assert all(not r.finished for r in reqs)
        assert all(r.latency is None for r in reqs)

    def test_bad_instrs(self):
        with pytest.raises(TrafficError, match="instrs"):
            generate_requests("poisson", RngTree(0), 0.01, 10, 0)
