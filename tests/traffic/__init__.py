"""Tests of the open-loop traffic tier (repro.traffic)."""
