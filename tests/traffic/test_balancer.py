"""Front-end balancer policies over stub chip servers."""

import pytest

from repro.errors import TrafficError
from repro.traffic import (
    balancer_summaries,
    create_balancer,
    get_balancer,
    list_balancers,
    register_balancer,
)
from repro.traffic.balancer import LoadBalancer
from repro.traffic.request import TrafficRequest


class StubServer:
    def __init__(self, outstanding, subrings=2, ring_busy=None):
        self.outstanding = outstanding
        self.subrings = subrings
        self._ring = ring_busy or [0] * subrings

    def subring_outstanding(self, subring):
        return self._ring[subring]


def _req(flow=0):
    return TrafficRequest(req_id=0, arrival=0.0, flow=flow, instrs=100)


class TestRegistry:
    def test_three_policies_registered(self):
        names = list_balancers()
        for expected in ("round-robin", "least-outstanding",
                         "subring-aware"):
            assert expected in names

    def test_unknown_balancer(self):
        with pytest.raises(TrafficError, match="unknown balancer"):
            get_balancer("clairvoyant")

    def test_duplicate_rejected(self):
        class Dup(LoadBalancer):
            name = "round-robin"

        with pytest.raises(TrafficError, match="duplicate"):
            register_balancer(Dup)

    def test_summaries_and_describe(self):
        cards = balancer_summaries()
        assert [c["name"] for c in cards] == list_balancers()
        card = create_balancer("round-robin").describe()
        assert card["name"] == "round-robin" and card["summary"]


class TestPolicies:
    def test_round_robin_cycles(self):
        rr = create_balancer("round-robin")
        servers = [StubServer(99), StubServer(0), StubServer(0)]
        picks = [rr.route(_req(), servers) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]       # ignores load entirely

    def test_least_outstanding_picks_emptiest(self):
        lo = create_balancer("least-outstanding")
        servers = [StubServer(5), StubServer(2), StubServer(7)]
        assert lo.route(_req(), servers) == 1

    def test_least_outstanding_tie_breaks_low_index(self):
        lo = create_balancer("least-outstanding")
        servers = [StubServer(3), StubServer(3)]
        assert lo.route(_req(), servers) == 0

    def test_subring_aware_follows_flow_affinity(self):
        sa = create_balancer("subring-aware")
        # flow 1 -> sub-ring 1; chip 0 is globally emptier but its
        # sub-ring 1 is busier than chip 1's
        servers = [StubServer(1, ring_busy=[0, 4]),
                   StubServer(3, ring_busy=[3, 0])]
        assert sa.route(_req(flow=1), servers) == 1
        # flow 0 -> sub-ring 0: chip 0's is the emptier one
        assert sa.route(_req(flow=0), servers) == 0

    def test_subring_aware_falls_back_to_total_load(self):
        sa = create_balancer("subring-aware")
        servers = [StubServer(6, ring_busy=[2, 2]),
                   StubServer(1, ring_busy=[2, 2])]
        assert sa.route(_req(flow=0), servers) == 1
