"""Traffic as a first-class run kind: validation, sweeps, cache stability."""

import pytest

from repro.config import smarco_scaled
from repro.errors import ConfigError
from repro.exp import ExperimentSpec, RunRequest, Runner
from repro.exp.cache import request_key
from repro.exp.request import request_from_snapshot


def _request(**overrides):
    base = dict(kind="traffic", workload="kmp", seed=0,
                smarco_config=smarco_scaled(2, 2), threads_per_core=2,
                instrs_per_thread=60, traffic_requests=400,
                traffic_chips=2, traffic_instrs=200)
    base.update(overrides)
    return RunRequest(**base)


class TestValidation:
    def test_valid_request_passes(self):
        _request().validate()

    @pytest.mark.parametrize("field,value,message", [
        ("traffic_arrival", "tsunami", "unknown arrival"),
        ("traffic_balancer", "clairvoyant", "unknown balancer"),
        ("traffic_chips", 0, "chip"),
        ("traffic_requests", 0, "request"),
        ("traffic_instrs", 0, "instruction"),
        ("traffic_load", 0.0, "load"),
        ("traffic_slo", (), "traffic_slo"),
        ("traffic_slo", (2.0, -1.0), "traffic_slo"),
    ])
    def test_bad_traffic_fields(self, field, value, message):
        with pytest.raises(ConfigError, match=message):
            _request(**{field: value}).validate()

    def test_traffic_axes_change_cache_key(self):
        base = _request()
        for changed in (base.replace(traffic_arrival="bursty"),
                        base.replace(traffic_balancer="round-robin"),
                        base.replace(traffic_load=0.9),
                        base.replace(traffic_chips=4),
                        base.replace(traffic_slo=(3.0,))):
            assert request_key(changed) != request_key(base)

    def test_snapshot_roundtrip_keeps_slo_tuple(self):
        request = _request(traffic_slo=(1.5, 4.0))
        rebuilt = request_from_snapshot(request.snapshot())
        assert rebuilt == request
        assert isinstance(rebuilt.traffic_slo, tuple)


class TestSweep:
    def test_traffic_sweep_is_deterministic_and_cache_stable(self, tmp_path):
        # the ISSUE's acceptance sweep: poisson + bursty arrivals over a
        # 2-chip cluster at three offered loads, replayed from cache
        spec = ExperimentSpec.grid(
            "traffic-mini", _request(),
            traffic_arrival=["poisson", "bursty"],
            traffic_load=[0.5, 0.7, 0.9])
        sweep = Runner(workers=1, base_dir=tmp_path).run(spec)
        assert sweep.n_points == 6
        seen = {(o.result.arrival, o.result.load) for o in sweep.outcomes}
        assert seen == {(a, l) for a in ("poisson", "bursty")
                        for l in (0.5, 0.7, 0.9)}
        for outcome in sweep.outcomes:
            assert outcome.result.requests_completed == 400
            assert outcome.result.calibration_source == "measured"

        again = Runner(workers=1, base_dir=tmp_path).run(spec)
        assert again.hits == 6
        assert [o.to_dict() for o in again.outcomes] == \
               [o.to_dict() for o in sweep.outcomes]

    def test_load_is_not_a_label(self, tmp_path):
        spec = ExperimentSpec.grid(
            "traffic-load", _request(traffic_arrival="bursty"),
            traffic_load=[0.4, 1.6])
        sweep = Runner(workers=1, base_dir=tmp_path).run(spec)
        calm, slammed = sorted(sweep.outcomes,
                               key=lambda o: o.result.load)
        assert slammed.result.mean_wait > calm.result.mean_wait
