"""DVFS operating-point registry tests."""

import pytest

from repro.errors import ConfigError
from repro.power import DVFS_POINTS, DvfsPoint, dvfs_summaries, get_dvfs, list_dvfs


class TestRegistry:
    def test_nominal_is_calibration_point(self):
        point = get_dvfs("nominal")
        assert point.frequency_ghz == pytest.approx(1.5)
        assert point.voltage == pytest.approx(1.0)
        assert point.dynamic_scale == pytest.approx(1.0)
        assert point.static_scale == pytest.approx(1.0)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="unknown dvfs point"):
            get_dvfs("ludicrous")

    def test_list_sorted_by_frequency(self):
        names = list_dvfs()
        freqs = [DVFS_POINTS[n].frequency_ghz for n in names]
        assert freqs == sorted(freqs)
        assert set(names) == set(DVFS_POINTS)

    def test_summaries_cover_every_point(self):
        lines = dvfs_summaries()
        assert len(lines) == len(DVFS_POINTS)
        for name in DVFS_POINTS:
            assert any(line.startswith(f"{name}:") for line in lines)


class TestScaling:
    def test_dynamic_energy_is_v_squared(self):
        point = DvfsPoint("x", frequency_ghz=1.0, voltage=0.8)
        assert point.dynamic_scale == pytest.approx(0.64)

    def test_static_power_is_linear_in_v(self):
        point = DvfsPoint("x", frequency_ghz=1.0, voltage=0.8)
        assert point.static_scale == pytest.approx(0.8)

    def test_turbo_costs_more_per_event_than_eco(self):
        assert get_dvfs("turbo").dynamic_scale > get_dvfs("eco").dynamic_scale

    def test_describe_mentions_frequency(self):
        assert "1.50 GHz" in get_dvfs("nominal").describe()
