"""Activity-proportional energy accounting tests.

The load-bearing property is *conservation*: the per-event constants are
calibrated so that a run whose counters hit every structural full-tilt
rate dissipates exactly the static Table 1 power — so the two power
models (static utilization-based, dynamic activity-based) agree at the
point where both are defined.  Everything else — classification, path
attribution, gating, DVFS scaling — layers on top of that anchor.
"""

import math

import pytest

from repro.chip.run import execute
from repro.config import smarco_default, smarco_scaled
from repro.errors import ConfigError
from repro.exp import RunRequest
from repro.power import (
    EVENT_SPECS,
    ActivityEnergyModel,
    PowerModel,
    classify_stat,
)


@pytest.fixture(scope="module")
def model():
    return ActivityEnergyModel(smarco_default())


@pytest.fixture(scope="module")
def tiny_outcome():
    """One fixed-seed fig17-class run with energy accounting attached."""
    request = RunRequest(kind="smarco", workload="kmp", seed=7,
                         smarco_config=smarco_scaled(2, 4),
                         threads_per_core=4, instrs_per_thread=120)
    return execute(request)


class TestConservation:
    """Activity energy reconciles with the static Table 1 model."""

    CYCLES = 1_500_000.0  # 1 ms at the 1.5 GHz calibration point

    def test_full_activity_matches_static_peak_32nm(self, model):
        activity = model.full_activity_energy(self.CYCLES, technology_nm=32)
        static = PowerModel().energy_joules(self.CYCLES, 1.0,
                                            technology_nm=32)
        assert activity == pytest.approx(static, rel=0.05)

    def test_full_activity_matches_static_peak_40nm(self, model):
        activity = model.full_activity_energy(self.CYCLES, technology_nm=40)
        static = PowerModel().energy_joules(self.CYCLES, 1.0,
                                            technology_nm=40)
        assert activity == pytest.approx(static, rel=0.05)

    def test_per_component_reconciliation(self, model):
        """Each Table 1 row reconciles on its own, not just the total."""
        acct = model.accounting_from_counts(
            model.full_activity_counts(self.CYCLES), self.CYCLES,
            technology_nm=32)
        static = PowerModel().breakdown(1.0, technology_nm=32)
        seconds = self.CYCLES / 1.5e9
        for comp, watts in static.items():
            assert acct.by_component[comp]["total"] == pytest.approx(
                watts * seconds, rel=0.05), comp

    def test_real_run_lands_between_idle_and_peak(self, tiny_outcome):
        """A fixed-seed run burns more than leakage, less than full tilt."""
        request = tiny_outcome.request
        model = ActivityEnergyModel(request.smarco_config)
        cycles = float(tiny_outcome.result.cycles)
        acct = model.accounting(tiny_outcome.stats, cycles)
        static_model = PowerModel(request.smarco_config)
        idle = static_model.energy_joules(cycles, 0.0)
        peak = static_model.energy_joules(cycles, 1.0)
        assert idle < acct.total_joules < peak
        assert acct.dynamic_joules > 0


class TestClassification:
    def test_core_retired(self):
        assert classify_stat("chip.subring0.core1.retired") == "core_op"

    def test_caches(self):
        assert classify_stat("chip.subring0.core1.icache.hits") == "icache_access"
        assert classify_stat("chip.subring0.core1.dcache.misses") == "dcache_access"

    def test_spm_both_views(self):
        assert classify_stat("chip.subring0.core1.spm_hits") == "spm_access"
        assert classify_stat("chip.subring0.spm2.reads") == "spm_access"
        assert classify_stat("chip.subring0.spm2.remote_accesses") == "spm_access"

    def test_dma_and_ring(self):
        assert classify_stat("chip.subring0.dma.transfers") == "dma_transfer"
        assert classify_stat("chip.noc.main.seg0.cw.bytes") == "ring_flit_hop"
        assert classify_stat("chip.direct.link0.bytes") == "ring_flit_hop"

    def test_mact_and_dram(self):
        assert classify_stat("chip.subring0.mact.requests_in") == "mact_lookup"
        assert classify_stat("chip.mem.mc0.dram0.requests") == "ddr_access"

    def test_non_chip_scope_excluded(self):
        """Compare-kind merges prefix the Xeon side; it must not bill."""
        assert classify_stat("xeon.core0.retired") is None

    def test_unbilled_counters(self):
        assert classify_stat("chip.mem.mc0.requests") is None   # double-count
        assert classify_stat("chip.subring0.dma.bytes") is None


class TestExtraction:
    def test_real_run_counts_every_kind(self, tiny_outcome):
        request = tiny_outcome.request
        model = ActivityEnergyModel(request.smarco_config)
        by_kind, by_path = model.extract_counts(tiny_outcome.stats)
        assert by_kind["core_op"] == float(tiny_outcome.result.instructions)
        for kind in ("icache_access", "dcache_access", "spm_access",
                     "ring_flit_hop", "mact_lookup", "ddr_access"):
            assert by_kind[kind] > 0, kind
        assert by_path  # hottest-path attribution has something to rank

    def test_path_totals_match_kind_totals(self, tiny_outcome):
        model = ActivityEnergyModel(tiny_outcome.request.smarco_config)
        by_kind, by_path = model.extract_counts(tiny_outcome.stats)
        folded: dict = {}
        for kinds in by_path.values():
            for kind, count in kinds.items():
                folded[kind] = folded.get(kind, 0.0) + count
        for kind, total in folded.items():
            assert total == pytest.approx(by_kind[kind]), kind


class TestAccounting:
    def test_unknown_kind_rejected(self, model):
        with pytest.raises(ConfigError, match="unknown event kinds"):
            model.accounting_from_counts({"warp_drive": 1.0}, 1000.0)

    def test_unknown_event_kind_in_epe(self, model):
        with pytest.raises(ConfigError, match="unknown event kind"):
            model.energy_per_event("warp_drive")

    def test_dvfs_scales_per_event_energy(self, model):
        nominal = model.energy_per_event("core_op", dvfs="nominal")
        eco = model.energy_per_event("core_op", dvfs="eco")
        turbo = model.energy_per_event("core_op", dvfs="turbo")
        assert eco == pytest.approx(nominal * 0.81)
        assert turbo == pytest.approx(nominal * 1.21)

    def test_zero_cycles_average_watts_is_nan(self, model):
        acct = model.accounting_from_counts({}, 0.0)
        assert math.isnan(acct.average_watts)
        assert acct.total_joules == 0.0

    def test_every_event_spec_has_a_positive_constant(self, model):
        for kind in EVENT_SPECS:
            assert model.energy_per_event(kind) > 0, kind


class TestPowerGating:
    def _stats(self, busy_subrings, idle_subrings):
        stats = {}
        for sr in busy_subrings:
            stats[f"chip.subring{sr}.core0.retired"] = 100
        for sr in idle_subrings:
            stats[f"chip.subring{sr}.core0.retired"] = 0
        return stats

    def test_idle_subring_detected_and_shed(self):
        model = ActivityEnergyModel(smarco_scaled(4, 4))
        stats = self._stats(busy_subrings=[0, 1, 2], idle_subrings=[3])
        gated = model.accounting(stats, 1e6, power_gate_idle=True)
        ungated = model.accounting(stats, 1e6, power_gate_idle=False)
        assert gated.gated_subrings == ["subring3"]
        assert gated.gated_joules > 0
        assert gated.static_joules == pytest.approx(
            ungated.static_joules - gated.gated_joules)

    def test_busy_chip_gates_nothing(self):
        model = ActivityEnergyModel(smarco_scaled(4, 4))
        stats = self._stats(busy_subrings=[0, 1, 2, 3], idle_subrings=[])
        acct = model.accounting(stats, 1e6, power_gate_idle=True)
        assert acct.gated_subrings == []
        assert acct.gated_joules == 0.0


class TestOutcomeIntegration:
    def test_execute_attaches_energy(self, tiny_outcome):
        energy = tiny_outcome.energy
        assert energy is not None
        assert energy["kind"] == "smarco"
        acct = energy["accounting"]
        assert acct["total_joules"] > 0
        assert set(acct["by_component"]) == {
            "Cores", "Hierarchy Ring", "MACT", "SPM+Cache", "MC+PHY"}

    def test_energy_excluded_from_result_digest(self, tiny_outcome):
        """Energy is observation-only: the golden digest ignores it."""
        from repro.chip.run import RunOutcome
        from repro.perf import result_digest

        stripped = tiny_outcome.to_dict()
        digest_with = result_digest(tiny_outcome)
        stripped.pop("energy", None)
        assert result_digest(RunOutcome.from_dict(stripped)) == digest_with

    def test_compare_carries_efficiency_ratio(self):
        request = RunRequest(kind="compare", workload="kmp", seed=3,
                             smarco_config=smarco_scaled(2, 4),
                             threads_per_core=4, instrs_per_thread=100)
        outcome = execute(request)
        energy = outcome.energy
        assert energy is not None
        assert energy["efficiency_ratio"] > 0
        assert energy["xeon_watts"] > 0
