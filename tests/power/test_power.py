"""Area/power model tests: must reproduce the paper's Table 1."""

import math

import pytest

from repro.config import MACTConfig, SmarCoConfig, smarco_default, smarco_scaled
from repro.errors import ConfigError
from repro.power import (
    AreaModel,
    PowerModel,
    XeonPowerModel,
    energy_efficiency,
    scale_area,
    scale_power,
)

# Paper Table 1 at 32nm.
TABLE1_AREA = {
    "Cores": 634.32,
    "Hierarchy Ring": 57.43,
    "MACT": 1.43,
    "SPM+Cache": 44.90,
    "MC+PHY": 12.92,
}
TABLE1_POWER = {
    "Cores": 209.91,
    "Hierarchy Ring": 14.55,
    "MACT": 0.14,
    "SPM+Cache": 1.84,
    "MC+PHY": 13.65,
}


class TestTable1Area:
    def test_component_areas_match_paper(self):
        model = AreaModel(smarco_default())
        breakdown = model.breakdown()
        for component, paper_value in TABLE1_AREA.items():
            assert breakdown[component] == pytest.approx(paper_value, rel=0.01), component

    def test_total_area_751(self):
        assert AreaModel().total_mm2() == pytest.approx(751.00, rel=0.01)

    def test_area_scales_with_cores(self):
        half = AreaModel(smarco_scaled(8))
        assert half.cores_mm2() == pytest.approx(634.32 / 2, rel=0.01)

    def test_mact_area_scales_with_lines(self):
        big = SmarCoConfig(mact=MACTConfig(lines=128))
        assert AreaModel(big).mact_mm2() == pytest.approx(2 * 1.43, rel=0.01)

    def test_40nm_prototype_is_larger(self):
        model = AreaModel()
        assert model.total_mm2(technology_nm=40) > model.total_mm2(technology_nm=32)


class TestTable1Power:
    def test_component_power_matches_paper(self):
        breakdown = PowerModel().breakdown(utilization=1.0)
        for component, paper_value in TABLE1_POWER.items():
            assert breakdown[component] == pytest.approx(paper_value, rel=0.01), component

    def test_total_power_240(self):
        assert PowerModel().total_watts() == pytest.approx(240.09, rel=0.01)

    def test_idle_power_is_static_share(self):
        model = PowerModel()
        idle = model.total_watts(utilization=0.0)
        peak = model.total_watts(utilization=1.0)
        assert idle == pytest.approx(peak * 0.3, rel=0.01)

    def test_bad_utilization(self):
        with pytest.raises(ConfigError):
            PowerModel().total_watts(utilization=1.5)

    def test_energy_scales_with_cycles(self):
        model = PowerModel()
        assert model.energy_joules(3_000_000) == pytest.approx(
            2 * model.energy_joules(1_500_000))

    def test_energy_at_default_frequency(self):
        # 1.5e9 cycles at 1.5GHz = 1 second at 240W
        assert PowerModel().energy_joules(1.5e9) == pytest.approx(240.09, rel=0.01)


class TestTechScaling:
    def test_identity(self):
        assert scale_area(100, 32, 32) == 100
        assert scale_power(100, 32, 32) == 100

    def test_area_quadratic(self):
        assert scale_area(100, 32, 40) == pytest.approx(100 * (40 / 32) ** 2)

    def test_power_roughly_linear(self):
        assert scale_power(100, 32, 40) == pytest.approx(125.0)

    def test_unknown_node(self):
        with pytest.raises(ConfigError):
            scale_area(1, 32, 22)

    def test_unknown_power_node(self):
        with pytest.raises(ConfigError):
            scale_power(1, 32, 22)

    def test_40nm_32nm_round_trip(self):
        """Scaling out to the 40nm prototype and back is lossless."""
        assert scale_power(scale_power(100.0, 32, 40), 40, 32) == \
            pytest.approx(100.0)
        assert scale_area(scale_area(100.0, 32, 40), 40, 32) == \
            pytest.approx(100.0)


class TestXeonPower:
    def test_full_load_is_tdp(self):
        assert XeonPowerModel().total_watts(1.0) == pytest.approx(165.0)

    def test_idle_floor(self):
        model = XeonPowerModel()
        assert model.total_watts(0.0) == pytest.approx(165.0 * 0.45)

    def test_idle_floor_dominates_low_utilization(self):
        """Below the idle floor the Xeon burns the floor, not less —
        the non-energy-proportionality Fig 2 complains about."""
        model = XeonPowerModel()
        floor = model.total_watts(0.0)
        assert model.total_watts(0.05) > floor
        assert model.total_watts(0.05) < model.total_watts(0.5)

    def test_energy(self):
        model = XeonPowerModel()
        # 2.2e9 cycles at 2.2GHz = 1s at TDP
        assert model.energy_joules(2.2e9, 1.0) == pytest.approx(165.0)


class TestEnergyEfficiency:
    def test_ratio(self):
        assert energy_efficiency(100.0, 50.0) == 2.0

    def test_zero_watts_is_nan_not_error(self):
        """Degenerate denominators yield NaN, not an exception — the
        NaN-not-zero convention every analysis table already follows.
        Regression: this used to raise ConfigError, which crashed
        report rendering on idle (zero-watt) operating points."""
        assert math.isnan(energy_efficiency(1.0, 0.0))
        assert math.isnan(energy_efficiency(1.0, -3.0))
        assert math.isnan(energy_efficiency(1.0, math.nan))

    def test_paper_direction_smarco_vs_xeon(self):
        """With the paper's 10.11x mean speedup and the two chips' power,
        the energy-efficiency gain lands in the reported range (6.95x)."""
        smarco_w = PowerModel().total_watts()
        xeon_w = XeonPowerModel().total_watts()
        gain = energy_efficiency(10.11, smarco_w) / energy_efficiency(1.0, xeon_w)
        assert 5.0 < gain < 9.0
