"""Xeon baseline system tests (paper Figs 1, 23 substrate)."""

import pytest

from repro.chip import XeonSystem, run_xeon
from repro.config import XeonConfig
from repro.errors import ConfigError
from repro.workloads import get_profile


def run(wl="kmp", n_threads=8, instrs=20_000, **kwargs):
    system = XeonSystem(seed=2, **kwargs)
    return system.run_profile(get_profile(wl), n_threads, instrs)


class TestExecution:
    def test_all_instructions_retire(self):
        result = run(n_threads=4, instrs=30_000)
        assert result.instructions == 4 * 30_000
        assert result.cycles > 0

    def test_zero_threads_rejected(self):
        system = XeonSystem()
        with pytest.raises(ConfigError):
            system.run_profile(get_profile("kmp"), 0, 100)

    def test_throughput_positive(self):
        assert run().throughput_ips > 0

    def test_deterministic(self):
        assert run(n_threads=4).cycles == run(n_threads=4).cycles


class TestScalingShape:
    """Fig 23's Xeon curve: rises to the HW-context count, then falls."""

    def tput(self, n_threads, total_instrs=2_000_000):
        system = XeonSystem(seed=5)
        per_thread = max(1000, total_instrs // n_threads)
        result = system.run_profile(get_profile("kmp"), n_threads, per_thread)
        return result.throughput_ips

    def test_more_threads_help_up_to_the_peak(self):
        assert self.tput(16) > self.tput(4)

    def test_heavy_oversubscription_hurts(self):
        """Past the SMT contexts, thread creation + context switching
        erode throughput (paper: performance goes down past 32-64)."""
        assert self.tput(1024) < self.tput(48)


class TestTurbo:
    def test_few_threads_run_at_turbo(self):
        lightly = run(n_threads=1)
        loaded = run(n_threads=48)
        cfg = XeonConfig()
        assert lightly.frequency_ghz > cfg.frequency_ghz * 1.3
        assert loaded.frequency_ghz == pytest.approx(cfg.frequency_ghz)

    def test_turbo_bounded_by_table2_range(self):
        cfg = XeonConfig()
        for n in (1, 8, 24, 96):
            result = run(n_threads=n)
            assert cfg.frequency_ghz <= result.frequency_ghz <= cfg.turbo_ghz


class TestFig1Metrics:
    def test_idle_ratio_grows_with_thread_count(self):
        low = run(n_threads=2)
        high = run(n_threads=96)
        assert 0 <= low.idle_ratio <= 1
        assert high.idle_ratio > low.idle_ratio * 0.9   # non-decreasing-ish

    def test_starvation_reported(self):
        result = run(wl="search", n_threads=16)
        assert 0 < result.starvation_ratio < 1

    def test_miss_ratios_all_levels(self):
        result = run(n_threads=8)
        assert set(result.miss_ratios) == {"L1", "L2", "LLC"}
        assert all(0 <= v <= 1 for v in result.miss_ratios.values())

    def test_effective_latency_ordering(self):
        """Fig 1d: deeper levels cost more than their hit latency, and L1
        stays the cheapest (L2 vs LLC can invert when the L2 miss ratio
        approaches 1 - the L2 lookup is then pure overhead)."""
        result = run(n_threads=8)
        lat = result.effective_latency
        cfg = XeonConfig()
        assert lat["L1"] < lat["L2"] and lat["L1"] < lat["LLC"]
        assert lat["LLC"] >= cfg.llc_hit_latency

    def test_busy_fraction_bounds(self):
        result = run(n_threads=8)
        assert 0 <= result.busy_fraction <= 1
        assert result.utilization == result.busy_fraction


class TestSmarcoVsXeonDirection:
    def test_smarco_beats_xeon_on_htc(self):
        """The headline direction of Fig 22 at test scale."""
        from repro.chip import run_smarco
        from repro.config import smarco_scaled

        smarco = run_smarco("wordcount", smarco_scaled(2, 8),
                            threads_per_core=8, instrs_per_thread=250)
        xeon = run_xeon("wordcount", n_threads=48, instrs_per_thread=10_000)
        assert smarco.throughput_ips > xeon.throughput_ips
