"""Tests for the shared instruction segment prefetch (paper §3.1.2)."""

import pytest

from repro.chip import SmarCoChip
from repro.config import smarco_scaled
from repro.workloads import get_profile


def run_chip(shared_code, workload="search", instrs=150):
    chip = SmarCoChip(smarco_scaled(2, 4), seed=4)
    chip.load_profile(get_profile(workload), threads_per_core=4,
                      instrs_per_thread=instrs, shared_code=shared_code)
    result = chip.run()
    return chip, result


def test_shared_code_completes():
    chip, result = run_chip(True)
    assert result.cores_done == result.total_cores


def test_shared_code_suppresses_icache_traffic():
    chip_on, _ = run_chip(True)
    chip_off, _ = run_chip(False)
    on_accesses = sum(c.icache.accesses for c in chip_on.cores)
    off_accesses = sum(c.icache.accesses for c in chip_off.cores)
    assert on_accesses == 0
    assert off_accesses > 0


def test_one_dma_broadcast_per_sub_ring():
    chip, _ = run_chip(True)
    total = sum(d.transfers.value for d in chip.dmas)
    assert total == chip.config.sub_rings      # one segment per ring
    assert all(d.bytes_moved.value > 0 for d in chip.dmas)


def test_cores_start_only_after_prefetch():
    """With shared code, no instruction retires before the segment DMA
    finishes (the ring's cores wait for their code)."""
    chip = SmarCoChip(smarco_scaled(1, 2), seed=4)
    profile = get_profile("search")
    chip.load_profile(profile, threads_per_core=2, instrs_per_thread=50,
                      shared_code=True)
    staging = chip.dmas[0].transfer_cycles(
        min(profile.code_footprint_bytes,
            chip.config.tcg.spm_bytes - 256))
    chip.run(max_cycles=staging - 1)
    assert sum(c.instructions for c in chip.cores) == 0
    chip.sim.run()
    assert sum(c.instructions for c in chip.cores) == 2 * 2 * 50


def test_shared_code_cost_amortises_on_long_runs():
    """The one-per-ring staging DMA amortises as runs grow: its relative
    overhead at 5000 instrs/thread is well below the overhead at 500."""
    _, on_short = run_chip(True, workload="search", instrs=500)
    _, off_short = run_chip(False, workload="search", instrs=500)
    _, on_long = run_chip(True, workload="search", instrs=5000)
    _, off_long = run_chip(False, workload="search", instrs=5000)
    overhead_short = on_short.cycles / off_short.cycles
    overhead_long = on_long.cycles / off_long.cycles
    assert overhead_long < overhead_short
    assert overhead_long < 1.25
