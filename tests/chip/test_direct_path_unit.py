"""Unit-level tests of the chip's direct-datapath read flow (§3.5.2)."""

import pytest

from repro.chip import SmarCoChip
from repro.config import smarco_scaled
from repro.mem.request import MemRequest, Priority


def make_chip():
    return SmarCoChip(smarco_scaled(2, 4), seed=8)


def submit(chip, core_id, prio, addr=0x9000_0000_0000, size=8):
    done = []
    request = MemRequest(addr=addr, size=size, is_write=False,
                         core_id=core_id, priority=prio,
                         issue_time=chip.sim.now,
                         on_complete=lambda r, t: done.append(t))
    chip._route_request(core_id, request)
    chip.sim.run()
    return request, done


def test_realtime_read_completes_via_star_path():
    chip = make_chip()
    request, done = submit(chip, 0, Priority.REALTIME)
    assert len(done) == 1
    assert chip.direct.delivered.value == 2     # command + reply legs
    assert chip.macts[0].requests_in.value == 0  # never entered the MACT


def test_normal_read_takes_the_ring_path():
    chip = make_chip()
    request, done = submit(chip, 0, Priority.NORMAL)
    assert len(done) == 1
    assert chip.direct.delivered.value == 0
    assert chip.macts[0].requests_in.value == 1


def test_direct_read_faster_than_ring_read_when_uncongested():
    chip_a = make_chip()
    rt_req, _ = submit(chip_a, 0, Priority.REALTIME)
    chip_b = make_chip()
    nm_req, _ = submit(chip_b, 0, Priority.NORMAL)
    # the ring path pays the MACT threshold + two ring traversals
    assert rt_req.latency < nm_req.latency


def test_direct_write_not_eligible():
    """Writes never use the star path (paper: control messages and
    memory READ requirements)."""
    chip = make_chip()
    request = MemRequest(addr=0x9000_0000_0000, size=8, is_write=True,
                         core_id=0, priority=Priority.REALTIME,
                         issue_time=0)
    chip._route_request(0, request)
    chip.sim.run()
    assert chip.direct.delivered.value == 0
    assert request.finish_time is not None      # still completed via rings
