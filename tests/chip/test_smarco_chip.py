"""SmarCo full-chip integration tests."""

import pytest

from repro.config import MACTConfig, RingConfig, SmarCoConfig, smarco_scaled
from repro.chip import SmarCoChip, run_smarco
from repro.errors import ConfigError
from repro.workloads import get_profile


def small_chip(**overrides):
    base = smarco_scaled(2, 4)
    cfg = SmarCoConfig(
        sub_rings=2, cores_per_sub_ring=4,
        memory=base.memory, **overrides,
    )
    return SmarCoChip(cfg, seed=1)


class TestConstruction:
    def test_geometry(self):
        chip = small_chip()
        assert len(chip.cores) == 8
        assert len(chip.macts) == 2
        assert len(chip.spms) == 8
        assert chip.noc.num_sub_rings == 2

    def test_ring_of_and_core_node(self):
        chip = small_chip()
        assert chip.ring_of(0) == 0 and chip.ring_of(5) == 1
        node = chip.core_node(5)
        assert node.ring == 1 and node.index == 1

    def test_run_requires_load(self):
        with pytest.raises(ConfigError):
            small_chip().run()

    def test_double_load_rejected(self):
        chip = small_chip()
        chip.load_profile(get_profile("kmp"), 2, 50)
        with pytest.raises(ConfigError):
            chip.load_profile(get_profile("kmp"), 2, 50)

    def test_too_many_threads_rejected(self):
        chip = small_chip()
        with pytest.raises(ConfigError):
            chip.load_profile(get_profile("kmp"), threads_per_core=9,
                              instrs_per_thread=10)


class TestExecution:
    def test_all_cores_complete(self):
        chip = small_chip()
        chip.load_profile(get_profile("wordcount"), threads_per_core=4,
                          instrs_per_thread=150)
        result = chip.run()
        assert result.cores_done == result.total_cores == 8
        assert result.instructions == 8 * 4 * 150
        assert result.cycles > 0

    def test_requests_flow_through_mact_to_memory(self):
        chip = small_chip()
        chip.load_profile(get_profile("kmp"), threads_per_core=4,
                          instrs_per_thread=200)
        result = chip.run()
        assert result.mem_requests > 0
        assert result.mem_transactions > 0
        assert chip.memory.total_requests > 0
        assert result.mean_request_latency > 0

    def test_mact_batches_at_least_some_requests(self):
        chip = small_chip()
        chip.load_profile(get_profile("kmp"), threads_per_core=8,
                          instrs_per_thread=300)
        result = chip.run()
        assert result.mact_request_reduction > 1.0

    def test_deterministic_across_seeds(self):
        def once():
            chip = SmarCoChip(smarco_scaled(2, 4), seed=7)
            chip.load_profile(get_profile("rnc"), 4, 100)
            return chip.run().cycles

        assert once() == once()

    def test_different_seed_differs(self):
        def once(seed):
            chip = SmarCoChip(smarco_scaled(2, 4), seed=seed)
            chip.load_profile(get_profile("rnc"), 4, 100)
            return chip.run().cycles

        assert once(1) != once(2)

    def test_max_cycles_horizon(self):
        chip = small_chip()
        chip.load_profile(get_profile("kmp"), 8, 5000)
        result = chip.run(max_cycles=500)
        assert result.cycles <= 500
        assert result.cores_done < result.total_cores

    def test_result_metrics_sane(self):
        result = run_smarco("kmeans", smarco_scaled(2, 4),
                            threads_per_core=4, instrs_per_thread=150)
        assert 0 < result.ipc
        assert 0 < result.utilization <= 1
        assert result.throughput_ips == pytest.approx(
            result.ipc * 1.5e9, rel=1e-6)
        assert 0 <= result.noc_bandwidth_utilization <= 1


class TestInPairBenefit:
    def test_eight_threads_beat_four_at_same_work(self):
        """In-pair threading (threads 5-8) must add throughput."""
        def tput(threads):
            chip = SmarCoChip(smarco_scaled(2, 4), seed=3)
            chip.load_profile(get_profile("kmp"), threads_per_core=threads,
                              instrs_per_thread=200)
            return chip.run().throughput_ips

        assert tput(8) > tput(4)


class TestDirectDatapath:
    def test_realtime_loads_use_direct_path(self):
        cfg = smarco_scaled(2, 4)
        chip = SmarCoChip(cfg, seed=1, realtime_fraction=0.5)
        chip.load_profile(get_profile("rnc"), 4, 200)
        chip.run()
        assert chip.direct is not None
        assert chip.direct.delivered.value > 0

    def test_direct_path_disabled_by_config(self):
        base = smarco_scaled(2, 4)
        cfg = SmarCoConfig(
            sub_rings=2, cores_per_sub_ring=4, memory=base.memory,
            ring=RingConfig(direct_datapath=False),
        )
        chip = SmarCoChip(cfg, seed=1, realtime_fraction=0.5)
        chip.load_profile(get_profile("rnc"), 4, 100)
        result = chip.run()
        assert chip.direct is None
        assert result.cores_done == 8      # still completes via the rings


class TestMactDisabled:
    def test_disabled_mact_sends_every_request_alone(self):
        base = smarco_scaled(2, 4)
        cfg = SmarCoConfig(
            sub_rings=2, cores_per_sub_ring=4, memory=base.memory,
            mact=MACTConfig(enabled=False),
        )
        chip = SmarCoChip(cfg, seed=1)
        chip.load_profile(get_profile("kmp"), 4, 200)
        result = chip.run()
        assert result.mact_request_reduction == pytest.approx(1.0)
