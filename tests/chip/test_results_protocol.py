"""The shared to_dict / from_dict result protocol (chip/results.py)."""

import json
import math

import pytest

from repro.chip import (
    ComparisonResult,
    SmarcoRunResult,
    TcgRunResult,
    XeonRunResult,
    result_from_dict,
)


def _smarco(instructions=4000, cycles=1000.0):
    return SmarcoRunResult(
        cycles=cycles, instructions=instructions, cores_done=4, total_cores=4,
        frequency_ghz=1.5, mem_requests=120, mem_transactions=30,
        mean_request_latency=200.0, noc_bandwidth_utilization=0.25,
        mact_request_reduction=4.0)


def _xeon(instructions=50_000, cycles=40_000.0):
    return XeonRunResult(
        cycles=cycles, instructions=instructions, threads=8,
        frequency_ghz=2.6, idle_ratio=0.4, starvation_ratio=0.1,
        busy_fraction=0.6, miss_ratios={"L1": 0.05, "L2": 0.2, "LLC": 0.5},
        effective_latency={"L1": 6.0, "L2": 30.0, "LLC": 130.0})


class TestRoundtrips:
    def test_smarco_result(self):
        result = _smarco()
        data = result.to_dict()
        assert data["type"] == "SmarcoRunResult"
        # computed properties ride along for analysis/telemetry consumers
        assert data["ipc"] == pytest.approx(result.ipc)
        assert data["throughput_ips"] == pytest.approx(result.throughput_ips)
        assert SmarcoRunResult.from_dict(data) == result
        assert result_from_dict(data) == result

    def test_xeon_result(self):
        result = _xeon()
        data = json.loads(json.dumps(result.to_dict()))
        assert data["type"] == "XeonRunResult"
        assert XeonRunResult.from_dict(data) == result
        assert result_from_dict(data) == result

    def test_tcg_result(self):
        result = TcgRunResult(workload="kmp", policy="inpair", threads=8,
                              cycles=500.0, instructions=1500)
        data = result.to_dict()
        assert data["ipc"] == pytest.approx(3.0)
        assert result_from_dict(data) == result

    def test_comparison_result_nests(self):
        result = ComparisonResult(workload="kmp", smarco=_smarco(),
                                  xeon=_xeon(), smarco_watts=240.0,
                                  xeon_watts=165.0)
        data = json.loads(json.dumps(result.to_dict()))
        assert data["type"] == "ComparisonResult"
        assert data["smarco"]["type"] == "SmarcoRunResult"
        assert data["speedup"] == pytest.approx(result.speedup)
        rebuilt = result_from_dict(data)
        assert rebuilt == result
        assert rebuilt.smarco.ipc == pytest.approx(result.smarco.ipc)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            result_from_dict({"type": "MysteryResult"})


class TestComparisonZeroBaseline:
    """speedup / energy_efficiency_gain must be nan, never a silent 0.0."""

    def test_speedup_nan_on_zero_xeon_throughput(self):
        result = ComparisonResult(workload="kmp", smarco=_smarco(),
                                  xeon=_xeon(instructions=0, cycles=0.0),
                                  smarco_watts=240.0, xeon_watts=165.0)
        assert math.isnan(result.speedup)

    def test_energy_gain_nan_on_zero_xeon_throughput(self):
        result = ComparisonResult(workload="kmp", smarco=_smarco(),
                                  xeon=_xeon(instructions=0, cycles=0.0),
                                  smarco_watts=240.0, xeon_watts=165.0)
        assert math.isnan(result.energy_efficiency_gain)

    def test_energy_gain_nan_on_zero_watts(self):
        result = ComparisonResult(workload="kmp", smarco=_smarco(),
                                  xeon=_xeon(), smarco_watts=0.0,
                                  xeon_watts=165.0)
        assert math.isnan(result.energy_efficiency_gain)
        result = ComparisonResult(workload="kmp", smarco=_smarco(),
                                  xeon=_xeon(), smarco_watts=240.0,
                                  xeon_watts=0.0)
        assert math.isnan(result.energy_efficiency_gain)

    def test_healthy_path_is_finite(self):
        result = ComparisonResult(workload="kmp", smarco=_smarco(),
                                  xeon=_xeon(), smarco_watts=240.0,
                                  xeon_watts=165.0)
        assert math.isfinite(result.speedup) and result.speedup > 0
        assert math.isfinite(result.energy_efficiency_gain)
