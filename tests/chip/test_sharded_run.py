"""Sharded chip execution: serial equivalence and multiprocess determinism.

The contract under test (docs/sharding.md):

* shards=1 (in-process, serially-merged domains) is **bit-for-bit
  identical** to the classic serial engine at ANY quantum — including
  quantum 0 and the default safe quantum — pinned against the same
  golden digests as the serial run;
* shards>=2 (multiprocess, canonical tags) is deterministic and
  worker-count-invariant, but may commute same-cycle cross-ring ties
  relative to serial (which is why ``shards`` is part of the result
  cache key).
"""

from types import SimpleNamespace

import pytest

from repro.chip.smarco import SmarCoChip
from repro.config import smarco_scaled
from repro.errors import ConfigError
from repro.perf.kernels import result_digest
from repro.workloads.base import get_profile

# the "small" chip_fig23 perf-kernel run; digest pinned in
# tests/perf/test_golden_digest.py
GEOMETRY = dict(sub_rings=2, cores_per_sub_ring=4)
INSTRS = 120
SERIAL_GOLDEN = "8d95ec410087b301"


def _build(shards):
    chip = SmarCoChip(smarco_scaled(**GEOMETRY), seed=0, shards=shards)
    chip.load_profile(get_profile("wordcount"), threads_per_core=4,
                      instrs_per_thread=INSTRS)
    return chip


def _run(shards, quantum=None, workers=None):
    chip = _build(shards)
    if shards:
        result = chip.run_sharded(workers=workers, quantum=quantum)
    else:
        result = chip.run()
    return result_digest(
        SimpleNamespace(result=result, stats=chip.registry.dump()))


class TestSerialEquivalence:
    """shards=1 reproduces the serial engine exactly (the tentpole claim)."""

    @pytest.mark.parametrize("quantum", [0, None, 1],
                             ids=["q0", "qdefault", "q1"])
    def test_sharded_matches_serial_golden(self, quantum):
        assert _run(1, quantum=quantum) == SERIAL_GOLDEN

    def test_serial_engine_still_matches_golden(self):
        # guards the guard: the constant above tracks the pinned digest
        assert _run(0) == SERIAL_GOLDEN


class TestMultiprocessDeterminism:
    def test_worker_count_invariant(self):
        digests = {_run(2, workers=w) for w in (2, 2)}
        assert len(digests) == 1

    def test_quantum_invariant(self):
        assert _run(2, quantum=1) == _run(2, quantum=2)


class TestShardedGating:
    def test_serial_chip_refuses_run_sharded(self):
        chip = SmarCoChip(smarco_scaled(**GEOMETRY), seed=0)
        with pytest.raises(ConfigError, match="shards"):
            chip.run_sharded()

    def test_inprocess_chip_refuses_multiprocess(self):
        chip = _build(1)
        with pytest.raises(ConfigError, match="rebuild"):
            chip.run_sharded(workers=2)

    def test_multiprocess_chip_refuses_inprocess(self):
        chip = _build(2)
        with pytest.raises(ConfigError, match="rebuild"):
            chip.run_sharded(workers=1)

    def test_multiprocess_rejects_quantum_zero(self):
        chip = _build(2)
        with pytest.raises(ConfigError, match="quantum"):
            chip.run_sharded(quantum=0)

    def test_sharded_chip_rejects_prefetcher(self):
        with pytest.raises(ConfigError, match="spm_prefetch"):
            SmarCoChip(smarco_scaled(**GEOMETRY), seed=0, shards=1,
                       spm_prefetch=True)

    def test_sharded_chip_rejects_run_to(self):
        chip = _build(1)
        with pytest.raises(ConfigError, match="serial"):
            chip.run_to(100.0)

    def test_serial_run_rejects_quantum(self):
        chip = SmarCoChip(smarco_scaled(**GEOMETRY), seed=0)
        with pytest.raises(ConfigError, match="quantum"):
            chip.run(quantum=2)
