"""Tests for the comparison harness (chip/run.py)."""

import warnings

import pytest

from repro.chip import ComparisonResult, compare, execute, run_smarco, run_xeon
from repro.config import smarco_scaled
from repro.errors import WorkloadError
from repro.exp import RunRequest


class TestRunHelpers:
    def test_run_smarco_request(self):
        request = RunRequest(kind="smarco", workload="kmp",
                             smarco_config=smarco_scaled(1, 4),
                             threads_per_core=4, instrs_per_thread=100)
        result = run_smarco(request)
        assert result.instructions == 4 * 4 * 100

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            run_smarco(RunRequest(workload="quake",
                                  smarco_config=smarco_scaled(1, 2)))

    def test_run_smarco_policy_passthrough(self):
        base = RunRequest(workload="kmp", smarco_config=smarco_scaled(1, 4),
                          threads_per_core=8, instrs_per_thread=100)
        pair = run_smarco(base.replace(core_policy="inpair"))
        coarse = run_smarco(base.replace(core_policy="coarse"))
        assert pair.cycles != coarse.cycles        # policies actually differ

    def test_execute_returns_outcome_with_stats(self):
        request = RunRequest(kind="smarco", workload="kmp",
                             smarco_config=smarco_scaled(1, 4),
                             threads_per_core=4, instrs_per_thread=80)
        outcome = execute(request)
        assert outcome.request == request
        assert outcome.result.instructions == 4 * 4 * 80
        assert outcome.stats                       # registry dump rides along


class TestKwargsShims:
    """Legacy positional-workload calls still work but warn."""

    def test_run_smarco_kwargs_warns_and_matches_request(self):
        with pytest.warns(DeprecationWarning, match="run_smarco"):
            legacy = run_smarco("kmp", smarco_scaled(1, 4),
                                threads_per_core=4, instrs_per_thread=100)
        modern = run_smarco(RunRequest(
            kind="smarco", workload="kmp", smarco_config=smarco_scaled(1, 4),
            threads_per_core=4, instrs_per_thread=100))
        assert legacy == modern

    def test_run_xeon_kwargs_warns(self):
        with pytest.warns(DeprecationWarning, match="run_xeon"):
            run_xeon("kmp", n_threads=4, instrs_per_thread=2_000)

    def test_compare_kwargs_warns(self):
        with pytest.warns(DeprecationWarning, match="compare"):
            compare("kmp", smarco_config=smarco_scaled(1, 4),
                    smarco_instrs_per_thread=60, xeon_threads=4,
                    xeon_instrs_per_thread=1_000)

    def test_request_path_does_not_warn(self):
        request = RunRequest(kind="xeon", workload="kmp", xeon_threads=4,
                             xeon_instrs_per_thread=2_000)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_xeon(request)


class TestCompare:
    @pytest.fixture(scope="class")
    def result(self):
        return compare(RunRequest(
            kind="compare", workload="wordcount",
            smarco_config=smarco_scaled(2, 8), instrs_per_thread=150,
            xeon_threads=16, xeon_instrs_per_thread=10_000, seed=9))

    def test_result_shape(self, result):
        assert isinstance(result, ComparisonResult)
        assert result.workload == "wordcount"
        assert result.smarco.throughput_ips > 0
        assert result.xeon.throughput_ips > 0

    def test_speedup_definition(self, result):
        assert result.speedup == pytest.approx(
            result.smarco.throughput_ips / result.xeon.throughput_ips)

    def test_full_chip_power_billing(self, result):
        """Energy accounting bills SmarCo at full-chip (Table-1 class)
        power even for the scaled geometry."""
        assert result.smarco_watts > 100       # 240W-class, not a 16-core sliver
        assert 0 < result.xeon_watts <= 165

    def test_energy_gain_consistent(self, result):
        smarco_eff = result.smarco.throughput_ips / result.smarco_watts
        xeon_eff = result.xeon.throughput_ips / result.xeon_watts
        assert result.energy_efficiency_gain == pytest.approx(
            smarco_eff / xeon_eff)

    def test_prototype_node_scaling(self):
        base = RunRequest(kind="compare", workload="kmp",
                          smarco_config=smarco_scaled(1, 4),
                          instrs_per_thread=100, xeon_threads=8,
                          xeon_instrs_per_thread=5_000, seed=3)
        at32 = compare(base)
        at40 = compare(base.replace(technology_nm=40))
        # the 40nm node burns more power -> lower energy-efficiency gain
        assert at40.smarco_watts > at32.smarco_watts
        assert at40.energy_efficiency_gain < at32.energy_efficiency_gain
        # throughput (and hence speedup) is node-independent here
        assert at40.speedup == pytest.approx(at32.speedup)
