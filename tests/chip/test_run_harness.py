"""Tests for the comparison harness (chip/run.py)."""

import pytest

from repro.chip import ComparisonResult, compare, run_smarco, run_xeon
from repro.config import smarco_scaled
from repro.errors import WorkloadError


class TestRunHelpers:
    def test_run_smarco_named_workload(self):
        result = run_smarco("kmp", smarco_scaled(1, 4),
                            threads_per_core=4, instrs_per_thread=100)
        assert result.instructions == 4 * 4 * 100

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            run_smarco("quake", smarco_scaled(1, 2))

    def test_run_smarco_policy_passthrough(self):
        pair = run_smarco("kmp", smarco_scaled(1, 4), threads_per_core=8,
                          instrs_per_thread=100, core_policy="inpair")
        coarse = run_smarco("kmp", smarco_scaled(1, 4), threads_per_core=8,
                            instrs_per_thread=100, core_policy="coarse")
        assert pair.cycles != coarse.cycles        # policies actually differ


class TestCompare:
    @pytest.fixture(scope="class")
    def result(self):
        return compare("wordcount", smarco_config=smarco_scaled(2, 8),
                       smarco_instrs_per_thread=150,
                       xeon_threads=16, xeon_instrs_per_thread=10_000,
                       seed=9)

    def test_result_shape(self, result):
        assert isinstance(result, ComparisonResult)
        assert result.workload == "wordcount"
        assert result.smarco.throughput_ips > 0
        assert result.xeon.throughput_ips > 0

    def test_speedup_definition(self, result):
        assert result.speedup == pytest.approx(
            result.smarco.throughput_ips / result.xeon.throughput_ips)

    def test_full_chip_power_billing(self, result):
        """Energy accounting bills SmarCo at full-chip (Table-1 class)
        power even for the scaled geometry."""
        assert result.smarco_watts > 100       # 240W-class, not a 16-core sliver
        assert 0 < result.xeon_watts <= 165

    def test_energy_gain_consistent(self, result):
        smarco_eff = result.smarco.throughput_ips / result.smarco_watts
        xeon_eff = result.xeon.throughput_ips / result.xeon_watts
        assert result.energy_efficiency_gain == pytest.approx(
            smarco_eff / xeon_eff)

    def test_prototype_node_scaling(self):
        at32 = compare("kmp", smarco_config=smarco_scaled(1, 4),
                       smarco_instrs_per_thread=100, xeon_threads=8,
                       xeon_instrs_per_thread=5_000, seed=3)
        at40 = compare("kmp", smarco_config=smarco_scaled(1, 4),
                       smarco_instrs_per_thread=100, xeon_threads=8,
                       xeon_instrs_per_thread=5_000, seed=3,
                       technology_nm=40)
        # the 40nm node burns more power -> lower energy-efficiency gain
        assert at40.smarco_watts > at32.smarco_watts
        assert at40.energy_efficiency_gain < at32.energy_efficiency_gain
        # throughput (and hence speedup) is node-independent here
        assert at40.speedup == pytest.approx(at32.speedup)
