"""Bit-identical resume: the non-negotiable checkpoint correctness bar.

``build -> run_to(T) -> checkpoint; restore -> finish`` must reproduce
the straight run's result digest exactly — for the chip, the Xeon
baseline and the scheduler testbed, each at two distinct snapshot
cycles, both in memory and through the on-disk (gzipped) container.
"""

import pytest

from repro.chip.session import RunSession
from repro.config import smarco_scaled
from repro.exp.request import RunRequest
from repro.perf.kernels import result_digest

SMARCO = RunRequest(kind="smarco", workload="kmp", seed=3,
                    smarco_config=smarco_scaled(2), threads_per_core=4,
                    instrs_per_thread=120)
XEON = RunRequest(kind="xeon", workload="wordcount", seed=1,
                  xeon_threads=4, xeon_instrs_per_thread=2500)
SCHED = RunRequest(kind="sched", sched_policy="laxity",
                   sched_scenario="deadline-storm", sched_tasks=24,
                   sched_contexts=8, seed=2)

CASES = [
    pytest.param(SMARCO, 500, id="smarco-early"),
    pytest.param(SMARCO, 2500, id="smarco-late"),
    pytest.param(XEON, 10_000, id="xeon-early"),
    pytest.param(XEON, 60_000, id="xeon-late"),
    pytest.param(SCHED, 60_000, id="sched-early"),
    pytest.param(SCHED, 400_000, id="sched-late"),
]

_STRAIGHT = {}


def _straight_digest(request):
    key = id(request)
    if key not in _STRAIGHT:
        _STRAIGHT[key] = result_digest(RunSession(request).finish())
    return _STRAIGHT[key]


@pytest.mark.parametrize("request_,cycles", CASES)
def test_restore_then_run_matches_straight_run(request_, cycles):
    session = RunSession(request_)
    session.run_to(cycles)
    assert session.now == cycles
    restored = RunSession.restore(session.checkpoint())
    assert restored.now == cycles
    assert result_digest(restored.finish()) == _straight_digest(request_)


def test_disk_roundtrip_matches_straight_run(tmp_path):
    session = RunSession(SMARCO)
    session.run_to(800)
    path = session.save(tmp_path / "chip.ckpt.gz")
    restored = RunSession.restore(path)
    assert restored.now == 800
    assert result_digest(restored.finish()) == _straight_digest(SMARCO)


def test_restored_session_matches_original_continuation():
    # the ORIGINAL session, continued past its own snapshot, also matches
    session = RunSession(SCHED)
    session.run_to(100_000)
    ckpt = session.checkpoint()
    original = result_digest(session.finish())
    assert original == _straight_digest(SCHED)
    assert result_digest(RunSession.restore(ckpt).finish()) == original


def test_run_cycles_horizon_is_honoured():
    bounded = SMARCO.replace(run_cycles=2000.0)
    outcome = RunSession(bounded).finish()
    assert outcome.result.cycles <= 2000.0 + 1e-9
    # one-shot execute() and the session agree on the bounded run
    from repro.chip.run import execute

    assert result_digest(execute(bounded)) == result_digest(outcome)
