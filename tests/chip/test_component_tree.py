"""The assembled chips as component trees: introspection, declared wiring,
hierarchical stats, and the no-closure-wiring contract on the chip layer."""

import inspect

from repro.chip import SmarCoChip, XeonSystem
from repro.chip.run import RunRequest, execute
from repro.config import smarco_scaled
from repro.workloads import get_profile


def make_chip(subrings=2, cores=4, seed=3):
    return SmarCoChip(smarco_scaled(subrings, cores), seed=seed)


class TestSmarcoTree:
    def test_tree_contains_every_subsystem(self):
        chip = make_chip()
        text = chip.tree()
        for name in ("chip", "noc", "mem", "subring0", "subring1",
                     "mact", "dma", "spm0", "core0"):
            assert name in text, f"{name} missing from tree render"

    def test_find_locates_macts_across_subrings(self):
        chip = make_chip(subrings=3)
        macts = chip.find("subring*/mact")
        assert [m.path for m in macts] == [
            "chip.subring0.mact", "chip.subring1.mact", "chip.subring2.mact"]
        assert chip.find("subring1.mact")[0] is macts[1]

    def test_cores_live_under_their_subring(self):
        chip = make_chip(subrings=2, cores=4)
        for cid, core in enumerate(chip.cores):
            ring = cid // 4
            assert core.path == f"chip.subring{ring}.core{cid}"

    def test_core_requests_fan_into_chip_port(self):
        chip = make_chip()
        port = chip.port("core_req")
        # one wire per core: every core's mem_req output lands here
        assert len(port.wires) == len(chip.cores)
        assert all(w.src.name == "mem_req" for w in port.wires)

    def test_mact_ports_wired_per_subring(self):
        chip = make_chip()
        for mact in chip.find("subring*/mact"):
            assert mact.port("submit").connected
            assert mact.port("batch_out").connected

    def test_elaboration_finished_in_constructor(self):
        chip = make_chip()
        assert chip.phase == "ready"
        assert all(c.phase == "ready" for c in chip.walk())

    def test_no_lambda_wiring_in_chip_assembly(self):
        import repro.chip.smarco as smarco
        source = inspect.getsource(smarco)
        assert "lambda" not in source, \
            "chip assembly must use declared ports, not closures"

    def test_stats_nest_by_component_path(self):
        chip = make_chip()
        chip.load_profile(get_profile("wordcount"), threads_per_core=4,
                          instrs_per_thread=100)
        chip.run()
        dump = chip.registry.dump()
        assert dump["chip.subring0.mact.requests_in"] > 0
        assert dump["chip.noc.delivered"] > 0
        nested = chip.registry.dump_nested()
        assert nested["chip"]["subring0"]["mact"]["requests_in"] == \
            dump["chip.subring0.mact.requests_in"]

    def test_tree_dict_lists_ports_and_wires(self):
        chip = make_chip()
        d = chip.tree_dict()
        assert d["name"] == "chip"
        ports = {p["name"]: p for p in d["ports"]}
        assert ports["core_req"]["direction"] == "in"
        assert ports["core_req"]["wires"] == len(chip.cores)


class TestXeonTree:
    def test_hierarchies_and_cores_in_tree(self):
        system = XeonSystem(seed=1)
        text = system.tree()
        assert "xeon" in text and "xcore0" in text
        assert len(system.find("xcore*")) == len(system.cores)

    def test_llc_stats_scoped_under_root(self):
        system = XeonSystem(seed=1)
        assert any(name.startswith("xeon.llc.")
                   for name in system.registry.names())


class TestRunOutcomeComponents:
    def test_outcome_carries_component_tree(self):
        request = RunRequest(
            kind="smarco", workload="wordcount", seed=0,
            smarco_config=smarco_scaled(1, 4),
            threads_per_core=4, instrs_per_thread=100)
        outcome = execute(request)
        assert outcome.components["name"] == "chip"
        child_names = {c["name"] for c in outcome.components["children"]}
        assert "subring0" in child_names and "noc" in child_names
        tree = outcome.stats_tree()
        assert tree["chip"]["noc"]["delivered"] == \
            outcome.stats["chip.noc.delivered"]
