"""Ring network tests."""

import pytest

from repro.config import RingConfig
from repro.errors import NocError
from repro.noc import Packet, Ring
from repro.noc.packet import NodeId
from repro.sim import Simulator


def make_ring(n=8, **kwargs):
    sim = Simulator()
    defaults = dict(datapath_bytes=8, fixed_per_dir=1, bidi_datapaths=2,
                    slice_bytes=2, hop_latency=1, router_latency=1)
    defaults.update(kwargs)
    return sim, Ring(sim, "r", n, **defaults)


def pkt(size=8):
    return Packet(src=NodeId("core", 0, 0), dst=NodeId("core", 0, 1),
                  size_bytes=size)


class TestRouting:
    def test_distance_both_directions(self):
        _, ring = make_ring(8)
        assert ring.distance(0, 3, "cw") == 3
        assert ring.distance(0, 3, "ccw") == 5
        assert ring.distance(3, 0, "cw") == 5
        assert ring.distance(3, 0, "ccw") == 3

    def test_choose_shortest_direction(self):
        _, ring = make_ring(8)
        assert ring.choose_direction(0, 2) == "cw"
        assert ring.choose_direction(0, 6) == "ccw"

    def test_tie_breaks_by_congestion(self):
        _, ring = make_ring(8)
        # opposite node: distance 4 both ways; congest the cw first hop
        for _ in range(10):
            ring.segments[0].transmit("cw", 16, 0)
            if ring.segments[0].bidi is not None:
                ring.segments[0].bidi.transmit(16, 0)
        assert ring.choose_direction(0, 4) == "ccw"


class TestTraversal:
    def test_delivery_and_latency(self):
        sim, ring = make_ring(8)
        p = pkt()
        ring.send(p, 0, 2)
        sim.run()
        assert p.delivered_at is not None
        # 2 hops x (router 1 + hop 1 + transmit 1) = 6
        assert p.delivered_at == 6
        assert p.hops == 2

    def test_long_way_round_is_slower(self):
        sim1, ring1 = make_ring(8)
        p1 = pkt()
        ring1.send(p1, 0, 1)
        sim1.run()
        sim2, ring2 = make_ring(8)
        p2 = pkt()
        ring2.send(p2, 0, 4)
        sim2.run()
        assert p2.delivered_at > p1.delivered_at

    def test_zero_hop_send_delivers_immediately(self):
        sim, ring = make_ring(4)
        p = pkt()
        ring.send(p, 2, 2)
        sim.run()
        assert p.delivered_at == 0 and p.hops == 0

    def test_invalid_stop_raises(self):
        sim, ring = make_ring(4)
        with pytest.raises(NocError):
            ring.send(pkt(), 0, 9)

    def test_non_final_leg_does_not_deliver(self):
        sim, ring = make_ring(4)
        p = pkt()
        proc = ring.send(p, 0, 1, final=False)
        sim.run()
        assert proc.finished and p.delivered_at is None

    def test_on_delivered_callback(self):
        sim, ring = make_ring(4)
        seen = []
        p = pkt()
        p.on_delivered = lambda packet, t: seen.append(t)
        ring.send(p, 0, 1)
        sim.run()
        assert seen == [p.delivered_at]


class TestContention:
    def test_many_packets_through_one_segment_queue_up(self):
        sim, ring = make_ring(4, bidi_datapaths=0)
        packets = [pkt(size=16) for _ in range(8)]
        for p in packets:
            ring.send(p, 0, 1)
        sim.run()
        finish_times = sorted(p.delivered_at for p in packets)
        # 16B packets on an 8B/cycle fixed link: 2 cycles each, serialised
        assert finish_times[-1] - finish_times[0] >= 7 * 2

    def test_small_packets_share_wide_ring(self):
        sim, ring = make_ring(4, fixed_per_dir=2, slice_bytes=2)
        packets = [pkt(size=2) for _ in range(8)]
        for p in packets:
            ring.send(p, 0, 1)
        sim.run()
        finish = {p.delivered_at for p in packets}
        assert len(finish) == 1          # all share the same slice-cycle

    def test_stats(self):
        sim, ring = make_ring(4)
        ring.send(pkt(), 0, 2)
        sim.run()
        assert ring.delivered.value == 1
        assert ring.hop_count.mean == 2
        assert ring.latency.mean > 0


class TestFromConfig:
    def test_main_ring_width(self):
        sim = Simulator()
        ring = Ring.from_config(sim, "main", 8, RingConfig(), is_main=True)
        # 3 fixed datapaths x 8B = 24B per direction
        assert ring.segments[0].cw.width_bytes == 24
        assert ring.segments[0].bidi.width_bytes == 16     # 2 bidi x 8B

    def test_sub_ring_width(self):
        sim = Simulator()
        ring = Ring.from_config(sim, "sub", 8, RingConfig(), is_main=False)
        assert ring.segments[0].cw.width_bytes == 8
        assert ring.segments[0].bidi.width_bytes == 16

    def test_conventional_config_uses_monolithic_links(self):
        sim = Simulator()
        cfg = RingConfig(greedy_allocation=False, slice_bytes=8)
        ring = Ring.from_config(sim, "r", 4, cfg)
        assert ring.segments[0].cw.policy == "monolithic"
