"""Sliced-link and ring-segment tests (paper §3.3 high-density NoC)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NocError
from repro.noc import RingSegment, SlicedLink


class TestSlicedLinkBasics:
    def test_slice_count(self):
        link = SlicedLink("l", width_bytes=16, slice_bytes=2)
        assert link.n_slices == 8

    def test_bad_geometry(self):
        with pytest.raises(NocError):
            SlicedLink("l", 16, 0)
        with pytest.raises(NocError):
            SlicedLink("l", 0, 2)

    def test_nondividing_slice_degrades_to_fewer_channels(self):
        # 24B link with 16B slices: one 24B channel (monolithic-like)
        link = SlicedLink("l", 24, 16)
        assert link.n_slices == 1 and link.slice_bytes == 24
        # 24B with 5B slices: 4 channels of 6B
        link = SlicedLink("l", 24, 5)
        assert link.n_slices == 4 and link.slice_bytes == 6

    def test_bad_policy(self):
        with pytest.raises(NocError):
            SlicedLink("l", 16, 2, policy="psychic")

    def test_zero_size_packet_rejected(self):
        link = SlicedLink("l", 16, 2)
        with pytest.raises(NocError):
            link.transmit(0, now=0)

    def test_single_packet_one_cycle(self):
        link = SlicedLink("l", 16, 2)
        assert link.transmit(4, now=0) == 1.0


class TestGreedyPolicy:
    def test_small_packets_share_a_cycle(self):
        """The headline high-density property: two 2B packets on a 16B link
        leave in the SAME cycle (conventional link would serialise)."""
        link = SlicedLink("l", 16, 2, policy="greedy")
        t1 = link.transmit(2, now=0)
        t2 = link.transmit(2, now=0)
        assert t1 == t2 == 1.0

    def test_link_fills_before_serialising(self):
        link = SlicedLink("l", 16, 2, policy="greedy")
        finishes = [link.transmit(2, now=0) for _ in range(8)]
        assert all(f == 1.0 for f in finishes)      # 8 x 2B fill 16B exactly
        assert link.transmit(2, now=0) == 2.0       # 9th waits a cycle

    def test_big_packet_streams_over_cycles(self):
        link = SlicedLink("l", 16, 2, policy="greedy")
        assert link.transmit(64, now=0) == 4.0      # 64B / 16B-per-cycle

    def test_big_and_small_coexist(self):
        # 14B packet takes 7 slices; 2B packet rides the 8th concurrently
        link = SlicedLink("l", 16, 2, policy="greedy")
        t_big = link.transmit(14, now=0)
        t_small = link.transmit(2, now=0)
        assert t_big == 1.0 and t_small == 1.0


class TestMonolithicPolicy:
    def test_small_packets_serialise(self):
        link = SlicedLink("l", 16, 2, policy="monolithic")
        assert link.transmit(2, now=0) == 1.0
        assert link.transmit(2, now=0) == 2.0       # whole link blocked

    def test_wide_packet_same_as_greedy(self):
        greedy = SlicedLink("g", 16, 2, policy="greedy")
        mono = SlicedLink("m", 16, 2, policy="monolithic")
        assert greedy.transmit(16, 0) == mono.transmit(16, 0)


class TestFirstFitPolicy:
    def test_contiguity_constraint_can_delay(self):
        """First-fit needs a contiguous block; fragmentation hurts it."""
        ff = SlicedLink("ff", 8, 2, policy="firstfit")    # 4 slices
        greedy = SlicedLink("g", 8, 2, policy="greedy")
        # Fragment: occupy slices so that free slices are non-adjacent.
        # first-fit packs [0,1] then [2,3]; greedy the same here...
        ff.transmit(4, 0)       # slices 0-1 busy till 1
        greedy.transmit(4, 0)
        # 6B packet needs 3 slices: first-fit has only 2 contiguous free
        t_ff = ff.transmit(6, 0)
        t_greedy = greedy.transmit(6, 0)
        assert t_greedy <= t_ff

    def test_firstfit_still_shares_when_contiguous(self):
        ff = SlicedLink("ff", 16, 2, policy="firstfit")
        assert ff.transmit(2, 0) == 1.0
        assert ff.transmit(2, 0) == 1.0


class TestThroughputOrdering:
    @given(st.lists(st.sampled_from([1, 2, 4, 8, 16]), min_size=5, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_greedy_never_slower_than_monolithic(self, sizes):
        """Property: for any packet mix, greedy slicing finishes the whole
        burst no later than the conventional wide link."""
        greedy = SlicedLink("g", 16, 2, policy="greedy")
        mono = SlicedLink("m", 16, 2, policy="monolithic")
        t_g = max(greedy.transmit(s, 0) for s in sizes)
        t_m = max(mono.transmit(s, 0) for s in sizes)
        assert t_g <= t_m

    @given(st.sampled_from([2, 4, 6, 8, 10, 14]),
           st.lists(st.sampled_from([2, 4, 6, 8]), min_size=0, max_size=7))
    @settings(max_examples=30, deadline=None)
    def test_greedy_beats_firstfit_per_packet(self, probe, warmup):
        """From identical prior occupancy, greedy's scatter-anywhere
        allocation never starts a packet later than first-fit's
        contiguous-block requirement (per-packet property; whole-sequence
        ordering is not a theorem because allocations diverge)."""
        greedy = SlicedLink("g", 16, 2, policy="greedy")
        ff = SlicedLink("f", 16, 2, policy="firstfit")
        for s in warmup:                       # same policy → same state
            greedy.transmit(s, 0)
            ff._slice_free = list(greedy._slice_free)
        assert greedy.transmit(probe, 0) <= ff.transmit(probe, 0)


class TestPolicyOrderingProperties:
    """Per-packet theorems relating the three allocators.

    From *identical* slice occupancy, a probe packet finishes no later
    under greedy (scatter anywhere) than under first-fit (contiguous
    block) than under monolithic (whole width).  The ordering is only a
    theorem per packet from mirrored state — whole-sequence allocations
    diverge between policies — so each probe copies the warmed-up state
    into all three links before measuring.
    """

    WARMUP = st.lists(
        st.tuples(st.sampled_from([2, 4, 6, 8, 14, 16, 32]),
                  st.integers(min_value=0, max_value=2)),
        min_size=0, max_size=12)

    @given(warmup=WARMUP, probe=st.sampled_from([2, 4, 6, 8, 10, 14, 16, 32]))
    @settings(max_examples=60, deadline=None)
    def test_greedy_firstfit_monolithic_finish_ordering(self, warmup, probe):
        greedy = SlicedLink("g", 16, 2, policy="greedy")
        now = 0.0
        for size, gap in warmup:
            now += gap
            greedy.transmit(size, now)
        ff = SlicedLink("f", 16, 2, policy="firstfit")
        mono = SlicedLink("m", 16, 2, policy="monolithic")
        ff._slice_free = list(greedy._slice_free)
        mono._slice_free = list(greedy._slice_free)
        t_greedy = greedy.transmit(probe, now)
        t_ff = ff.transmit(probe, now)
        t_mono = mono.transmit(probe, now)
        assert t_greedy <= t_ff <= t_mono

    @given(warmup=WARMUP, probe=st.sampled_from([2, 4, 6, 8, 10, 14, 16, 32]))
    @settings(max_examples=60, deadline=None)
    def test_start_times_ordered_too(self, warmup, probe):
        # the same dominance holds for the queuing delay (reserve start)
        greedy = SlicedLink("g", 16, 2, policy="greedy")
        now = 0.0
        for size, gap in warmup:
            now += gap
            greedy.transmit(size, now)
        ff = SlicedLink("f", 16, 2, policy="firstfit")
        mono = SlicedLink("m", 16, 2, policy="monolithic")
        ff._slice_free = list(greedy._slice_free)
        mono._slice_free = list(greedy._slice_free)
        assert (greedy.reserve(probe, now)[0]
                <= ff.reserve(probe, now)[0]
                <= mono.reserve(probe, now)[0])


class TestReservationLog:
    @given(policy=st.sampled_from(["greedy", "firstfit", "monolithic"]),
           packets=st.lists(
               st.tuples(st.sampled_from([1, 2, 4, 6, 8, 16, 32]),
                         st.integers(min_value=0, max_value=3)),
               min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_per_slice_reservations_never_overlap(self, policy, packets):
        """No two reservations may hold the same slice at the same time,
        whatever the policy and arrival pattern."""
        link = SlicedLink("l", 16, 2, policy=policy)
        link.reservation_log = []
        now = 0.0
        for size, gap in packets:
            now += gap
            link.transmit(size, now)
        assert len(link.reservation_log) == len(packets)
        per_slice = {}
        for slices, start, finish in link.reservation_log:
            assert finish > start
            for i in slices:
                per_slice.setdefault(i, []).append((start, finish))
        for intervals in per_slice.values():
            intervals.sort()
            for (_, f1), (s2, _) in zip(intervals, intervals[1:]):
                assert f1 <= s2

    def test_log_disabled_by_default(self):
        link = SlicedLink("l", 16, 2)
        link.transmit(4, 0)
        assert link.reservation_log is None

    def test_log_records_chosen_slices(self):
        link = SlicedLink("l", 16, 2, policy="firstfit")
        link.reservation_log = []
        link.transmit(6, 0)                  # 3 slices, contiguous from 0
        assert link.reservation_log == [((0, 1, 2), 0.0, 1.0)]


class TestStatsAndUtilization:
    def test_bytes_and_packets_counted(self):
        link = SlicedLink("l", 16, 2)
        link.transmit(4, 0)
        link.transmit(6, 0)
        assert link.packets.value == 2 and link.bytes_moved.value == 10

    def test_utilization_bounds(self):
        link = SlicedLink("l", 16, 2)
        link.transmit(16, 0)
        assert link.utilization(0) == 0.0
        assert 0 < link.utilization(10) <= 1.0

    def test_next_free_tracks_earliest_slice(self):
        link = SlicedLink("l", 16, 2, policy="greedy")
        link.transmit(2, 0)
        assert link.next_free() == 0.0       # 7 slices still free at t=0
        for _ in range(7):
            link.transmit(2, 0)
        assert link.next_free() == 1.0


class TestRingSegment:
    def test_direction_links_independent(self):
        seg = RingSegment("s", datapath_bytes=8, fixed_per_dir=1,
                          bidi_datapaths=0, slice_bytes=2)
        t_cw = seg.transmit("cw", 8, 0)
        t_ccw = seg.transmit("ccw", 8, 0)
        assert t_cw == t_ccw == 1.0

    def test_bidi_pool_borrowed_under_load(self):
        # fixed 8B/dir + 16B bidi: a second same-direction burst should
        # borrow the bidi pool instead of waiting for the fixed link.
        seg = RingSegment("s", 8, fixed_per_dir=1, bidi_datapaths=2,
                          slice_bytes=2)
        t1 = seg.transmit("cw", 8, 0)       # fixed cw busy till 1
        t2 = seg.transmit("cw", 8, 0)       # rides bidi, also finishes at 1
        assert t1 == 1.0 and t2 == 1.0

    def test_without_bidi_second_burst_waits(self):
        seg = RingSegment("s", 8, fixed_per_dir=1, bidi_datapaths=0,
                          slice_bytes=2)
        assert seg.transmit("cw", 8, 0) == 1.0
        assert seg.transmit("cw", 8, 0) == 2.0

    def test_idle_fixed_link_is_not_bypassed_for_freer_bidi(self):
        """Regression: the bidi pool used to be borrowed whenever it was
        *freer* than the fixed link, even if the fixed link was idle at
        ``now`` — serialising both directions through the shared pool
        under light load.  Borrowing now requires the fixed link to be
        actually busy at ``now``."""
        seg = RingSegment("s", 8, fixed_per_dir=1, bidi_datapaths=2,
                          slice_bytes=2)
        seg.transmit("cw", 8, 0)            # fixed cw busy till 1
        # at t=5 the fixed link is idle again; its next_free()==1 is
        # "later" than the untouched bidi pool's 0, but it must be used
        start, finish = seg.transmit_detail("cw", 8, 5)
        assert (start, finish) == (5.0, 6.0)
        assert seg.cw.packets.value == 2
        assert seg.bidi.packets.value == 0

    def test_bidi_borrowed_only_while_fixed_busy(self):
        seg = RingSegment("s", 8, fixed_per_dir=1, bidi_datapaths=2,
                          slice_bytes=2)
        seg.transmit("cw", 8, 0)
        start, finish = seg.transmit_detail("cw", 8, 0)   # fixed busy now
        assert (start, finish) == (0.0, 1.0)
        assert seg.bidi.packets.value == 1

    def test_busy_bidi_does_not_attract_traffic(self):
        # bidi busier than the fixed link: stay on the fixed link
        seg = RingSegment("s", 8, fixed_per_dir=1, bidi_datapaths=1,
                          slice_bytes=2)
        seg.bidi.transmit(8, 0)             # bidi busy till 1
        seg.transmit("cw", 8, 0)            # fixed idle: use it
        assert seg.cw.packets.value == 1
        assert seg.bidi.packets.value == 1  # only the warm-up packet

    def test_unknown_direction(self):
        seg = RingSegment("s", 8, 1, 0, 2)
        with pytest.raises(NocError):
            seg.transmit("up", 4, 0)

    def test_total_bytes(self):
        seg = RingSegment("s", 8, 1, 2, 2)
        seg.transmit("cw", 8, 0)
        seg.transmit("ccw", 4, 0)
        assert seg.total_bytes == 12
