"""Hierarchical ring NoC tests (paper Fig 4 topology)."""

import pytest

from repro.config import RingConfig
from repro.errors import NocError
from repro.noc import HierarchicalRingNoC, NodeId, Packet, PacketKind
from repro.sim import Simulator


def make_noc(sub_rings=4, cores=4, mcs=2, **ring_kwargs):
    sim = Simulator()
    cfg = RingConfig(**ring_kwargs) if ring_kwargs else None
    noc = HierarchicalRingNoC(sim, sub_rings, cores, mcs, config=cfg)
    return sim, noc


def send(sim, noc, src, dst, size=8):
    p = Packet(src=src, dst=dst, size_bytes=size, kind=PacketKind.MEM_READ)
    noc.send(p)
    sim.run()
    return p


class TestTopology:
    def test_main_ring_contains_bridges_mcs_sched_io(self):
        _, noc = make_noc(sub_rings=4, mcs=2)
        kinds = [n.kind for n in noc.main_stops]
        assert kinds.count("bridge") == 4
        assert kinds.count("mc") == 2
        assert kinds.count("sched") == 1
        assert kinds.count("io") == 1

    def test_mcs_equally_spaced(self):
        _, noc = make_noc(sub_rings=4, mcs=2)
        mc_positions = [i for i, n in enumerate(noc.main_stops) if n.kind == "mc"]
        gaps = [mc_positions[1] - mc_positions[0]]
        assert all(g == 3 for g in gaps)            # 2 bridges + 1 mc pattern

    def test_paper_geometry(self):
        _, noc = make_noc(sub_rings=16, cores=16, mcs=4)
        assert len(noc.sub_ring_nets) == 16
        assert all(r.num_stops == 17 for r in noc.sub_ring_nets)   # 16 cores + bridge
        assert len(noc.main_stops) == 16 + 4 + 2

    def test_too_many_mcs_rejected(self):
        with pytest.raises(NocError):
            make_noc(sub_rings=2, mcs=3)

    def test_stop_lookup_errors(self):
        _, noc = make_noc()
        with pytest.raises(NocError):
            noc.main_stop(NodeId("core", 0, 0))
        with pytest.raises(NocError):
            noc.sub_stop(NodeId("mc", index=0))
        with pytest.raises(NocError):
            noc.sub_stop(NodeId("core", 0, 99))


class TestRouting:
    def test_same_subring_stays_local(self):
        sim, noc = make_noc()
        p = send(sim, noc, NodeId("core", 1, 0), NodeId("core", 1, 2))
        assert p.delivered_at is not None
        assert noc.main_ring.total_bytes() == 0      # never touched main ring

    def test_cross_subring_uses_main_ring(self):
        sim, noc = make_noc()
        p = send(sim, noc, NodeId("core", 0, 0), NodeId("core", 3, 1))
        assert p.delivered_at is not None
        assert noc.main_ring.total_bytes() > 0

    def test_core_to_memory(self):
        sim, noc = make_noc()
        p = send(sim, noc, NodeId("core", 0, 1), NodeId("mc", index=0))
        assert p.delivered_at is not None and p.hops > 0

    def test_memory_to_core_reply(self):
        sim, noc = make_noc()
        p = send(sim, noc, NodeId("mc", index=1), NodeId("core", 2, 0))
        assert p.delivered_at is not None

    def test_device_to_device_on_main_ring_only(self):
        sim, noc = make_noc()
        p = send(sim, noc, NodeId("sched"), NodeId("mc", index=0))
        assert p.delivered_at is not None
        assert all(r.total_bytes() == 0 for r in noc.sub_ring_nets)

    def test_cross_ring_is_slower_than_local(self):
        sim1, noc1 = make_noc()
        local = send(sim1, noc1, NodeId("core", 0, 0), NodeId("core", 0, 1))
        sim2, noc2 = make_noc()
        remote = send(sim2, noc2, NodeId("core", 0, 0), NodeId("core", 2, 1))
        assert remote.latency > local.latency

    def test_bridge_latency_charged(self):
        sim_fast, noc_fast = make_noc(bridge_latency=0)
        p_fast = send(sim_fast, noc_fast, NodeId("core", 0, 0), NodeId("mc", index=0))
        sim_slow, noc_slow = make_noc(bridge_latency=10)
        p_slow = send(sim_slow, noc_slow, NodeId("core", 0, 0), NodeId("mc", index=0))
        assert p_slow.latency == p_fast.latency + 10


class TestMetrics:
    def test_delivered_and_latency_recorded(self):
        sim, noc = make_noc()
        send(sim, noc, NodeId("core", 0, 0), NodeId("mc", index=0))
        assert noc.delivered.value == 1
        assert noc.mean_latency() > 0

    def test_bandwidth_utilization_in_bounds(self):
        sim, noc = make_noc()
        send(sim, noc, NodeId("core", 0, 0), NodeId("core", 3, 3), size=64)
        util = noc.bandwidth_utilization(sim.now)
        assert 0 < util <= 1

    def test_total_bytes_counts_every_leg(self):
        sim, noc = make_noc()
        send(sim, noc, NodeId("core", 0, 0), NodeId("core", 1, 0), size=8)
        # 8 bytes per traversed segment on src sub-ring, main ring, dst sub-ring
        assert noc.total_bytes() >= 3 * 8
