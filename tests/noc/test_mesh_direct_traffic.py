"""Mesh baseline, direct datapath, and traffic-generator tests."""

import pytest

from repro.errors import NocError, WorkloadError
from repro.noc import (
    DirectDatapath,
    GranularityDist,
    MeshNoC,
    NodeId,
    Packet,
    PacketKind,
    TrafficGenerator,
    run_uniform_traffic,
)
from repro.noc.hierring import HierarchicalRingNoC
from repro.sim import RngTree, Simulator


class TestMesh:
    def test_xy_route_shape(self):
        sim = Simulator()
        mesh = MeshNoC(sim, 4, 4)
        # node 0 (0,0) -> node 15 (3,3): x first then y
        path = mesh.xy_route(0, 15)
        assert path == [1, 2, 3, 7, 11, 15]

    def test_delivery(self):
        sim = Simulator()
        mesh = MeshNoC(sim, 4, 4)
        p = Packet(src=NodeId("core"), dst=NodeId("core"), size_bytes=8)
        mesh.send(p, 0, 15)
        sim.run()
        assert p.delivered_at is not None and p.hops == 6

    def test_self_send(self):
        sim = Simulator()
        mesh = MeshNoC(sim, 2, 2)
        p = Packet(src=NodeId("core"), dst=NodeId("core"), size_bytes=8)
        mesh.send(p, 1, 1)
        sim.run()
        assert p.delivered_at == 0

    def test_out_of_range(self):
        sim = Simulator()
        mesh = MeshNoC(sim, 2, 2)
        with pytest.raises(NocError):
            mesh.send(Packet(NodeId("core"), NodeId("core"), 4), 0, 99)

    def test_mesh_hop_cost_higher_than_ring(self):
        """Per-hop cost: mesh routers are heavier (paper §3.2 argument)."""
        sim_m = Simulator()
        mesh = MeshNoC(sim_m, 4, 4)
        p_m = Packet(NodeId("core"), NodeId("core"), 8)
        mesh.send(p_m, 0, 1)
        sim_m.run()

        from repro.noc import Ring
        sim_r = Simulator()
        ring = Ring(sim_r, "r", 16, datapath_bytes=8, fixed_per_dir=1,
                    bidi_datapaths=2, slice_bytes=2)
        p_r = Packet(NodeId("core"), NodeId("core"), 8)
        ring.send(p_r, 0, 1)
        sim_r.run()
        assert p_m.latency > p_r.latency


class TestDirectDatapath:
    def test_realtime_read_is_eligible(self):
        sim = Simulator()
        dp = DirectDatapath(sim, sub_rings=2)
        p = Packet(NodeId("core", 0, 0), NodeId("mc"), 8,
                   kind=PacketKind.MEM_READ, realtime=True)
        assert dp.eligible(p)

    def test_normal_read_not_eligible(self):
        sim = Simulator()
        dp = DirectDatapath(sim, sub_rings=2)
        p = Packet(NodeId("core", 0, 0), NodeId("mc"), 8,
                   kind=PacketKind.MEM_READ)
        assert not dp.eligible(p)

    def test_control_always_eligible(self):
        sim = Simulator()
        dp = DirectDatapath(sim, sub_rings=2)
        p = Packet(NodeId("sched"), NodeId("core", 0, 0), 4,
                   kind=PacketKind.CONTROL)
        assert dp.eligible(p)

    def test_flight_time_is_fixed_latency_plus_serialisation(self):
        sim = Simulator()
        dp = DirectDatapath(sim, sub_rings=1, link_bytes=8, latency=4)
        p = Packet(NodeId("core", 0, 0), NodeId("mc"), 8,
                   kind=PacketKind.MEM_READ, realtime=True)
        dp.send(p, 0)
        sim.run()
        assert p.delivered_at == 1 + 4

    def test_direct_beats_congested_ring(self):
        """Under heavy ring congestion the star path wins (paper §3.5.2)."""
        sim = Simulator()
        noc = HierarchicalRingNoC(sim, 4, 4, 2)
        dp = DirectDatapath(sim, sub_rings=4)
        # congest the ring with background packets
        for i in range(200):
            noc.send(Packet(NodeId("core", 0, i % 4), NodeId("mc", index=0), 64,
                            kind=PacketKind.MEM_WRITE))
        ring_pkt = Packet(NodeId("core", 0, 0), NodeId("mc", index=0), 8,
                          kind=PacketKind.MEM_READ)
        direct_pkt = Packet(NodeId("core", 0, 0), NodeId("mc", index=0), 8,
                            kind=PacketKind.MEM_READ, realtime=True)
        noc.send(ring_pkt)
        dp.send(direct_pkt, 0)
        sim.run()
        assert direct_pkt.latency < ring_pkt.latency

    def test_unknown_subring(self):
        sim = Simulator()
        dp = DirectDatapath(sim, sub_rings=1)
        with pytest.raises(NocError):
            dp.send(Packet(NodeId("core"), NodeId("mc"), 4), 5)


class TestGranularityDist:
    def test_sampling_respects_support(self):
        dist = GranularityDist(((2, 0.5), (8, 0.5)))
        rng = RngTree(0).stream("t")
        samples = {dist.sample(rng) for _ in range(100)}
        assert samples <= {2, 8} and len(samples) == 2

    def test_mean(self):
        dist = GranularityDist(((2, 1.0), (6, 1.0)))
        assert dist.mean() == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            GranularityDist(())
        with pytest.raises(WorkloadError):
            GranularityDist(((0, 1.0),))
        with pytest.raises(WorkloadError):
            GranularityDist(((4, 0.0),))


class TestTrafficGenerator:
    def test_injection_and_delivery(self):
        sim = Simulator()
        noc = HierarchicalRingNoC(sim, 2, 4, 2)
        dist = GranularityDist(((2, 0.7), (8, 0.3)))
        gen = TrafficGenerator(sim, noc, dist, injection_rate=0.02, seed=1)
        result = gen.run(cycles=500)
        assert result.injected > 0
        assert result.delivered == result.injected
        assert result.throughput > 0
        assert result.mean_latency > 0

    def test_bad_rate(self):
        sim = Simulator()
        noc = HierarchicalRingNoC(sim, 2, 2, 1)
        dist = GranularityDist(((2, 1.0),))
        with pytest.raises(WorkloadError):
            TrafficGenerator(sim, noc, dist, injection_rate=0.0)
        with pytest.raises(WorkloadError):
            TrafficGenerator(sim, noc, dist, injection_rate=0.5, pattern="zigzag")

    def test_uniform_pattern_targets_cores(self):
        sim = Simulator()
        noc = HierarchicalRingNoC(sim, 2, 4, 2)
        dist = GranularityDist(((4, 1.0),))
        gen = TrafficGenerator(sim, noc, dist, injection_rate=0.05,
                               pattern="uniform", seed=4)
        result = gen.run(cycles=300)
        assert result.delivered == result.injected > 0
        # uniform traffic stays among cores: no controller packets
        assert all(mc_stop.kind != "core" or True
                   for mc_stop in noc.main_stops)

    def test_deterministic_given_seed(self):
        def once():
            sim = Simulator()
            noc = HierarchicalRingNoC(sim, 2, 4, 2)
            dist = GranularityDist(((2, 0.6), (16, 0.4)))
            return TrafficGenerator(sim, noc, dist, 0.02, seed=7).run(300).throughput

        assert once() == once()

    def test_fig18_direction_small_packets_gain_from_narrow_slices(self):
        """Core Fig 18 shape: with a small-granularity mix, 2B slicing
        beats 16B slicing on delivered packet latency under load."""
        dist = GranularityDist(((1, 0.4), (2, 0.3), (4, 0.2), (8, 0.1)))
        fine = run_uniform_traffic(2, 8, dist, slice_bytes=2,
                                   injection_rate=0.2, cycles=400, seed=3)
        coarse = run_uniform_traffic(2, 8, dist, slice_bytes=16,
                                     injection_rate=0.2, cycles=400, seed=3)
        assert fine.mean_latency <= coarse.mean_latency
