"""High-density router microarchitecture tests (paper Fig 10)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NocError
from repro.noc import Flit, HighDensityRouter, RouterTestbench


def make_router(**kwargs):
    defaults = dict(n_inputs=4, width_bytes=16, slice_bytes=2,
                    policy="greedy", buffer_flits=8)
    defaults.update(kwargs)
    return HighDensityRouter("r", **defaults)


class TestInjection:
    def test_inject_and_occupancy(self):
        r = make_router()
        assert r.inject(0, Flit(2))
        assert r.occupancy(0) == 1 and r.pending == 1

    def test_backpressure_when_buffer_full(self):
        r = make_router(buffer_flits=2)
        assert r.inject(0, Flit(2))
        assert r.inject(0, Flit(2))
        assert not r.inject(0, Flit(2))
        assert r.rejected.value == 1

    def test_invalid_port(self):
        r = make_router()
        with pytest.raises(NocError):
            r.inject(9, Flit(2))

    def test_oversized_flit(self):
        r = make_router(width_bytes=8)
        with pytest.raises(NocError):
            r.inject(0, Flit(16))

    def test_flit_validation(self):
        with pytest.raises(NocError):
            Flit(0)


class TestGreedyAllocation:
    def test_small_flits_from_different_inputs_share_a_cycle(self):
        """The Fig 10 headline: 'packets from other input directions will
        occupy free space and pass the crossbar switch simultaneously'."""
        r = make_router()
        for port in range(4):
            r.inject(port, Flit(2, packet_id=port))
        emitted = r.tick()
        assert len(emitted) == 4
        assert {port for port, _ in emitted} == {0, 1, 2, 3}

    def test_adjacent_flits_of_one_input_pass_together(self):
        r = make_router()
        for _ in range(4):
            r.inject(0, Flit(4))
        emitted = r.tick()
        assert len(emitted) == 4            # 4 x 4B = 16B = full width

    def test_capacity_respected_per_cycle(self):
        r = make_router()
        for _ in range(8):
            r.inject(0, Flit(4))
        emitted = r.tick()
        assert sum(f.size_bytes for _, f in emitted) <= 16
        assert len(emitted) == 4

    def test_flit_smaller_than_slice_occupies_whole_slice(self):
        # 1B flits each occupy a 2B slice: only 8 of them fit in 16B
        r = make_router(slice_bytes=2)
        for _ in range(12):
            r.inject(0, Flit(1))
        assert len(r.tick()) == 8

    def test_round_robin_fairness_over_cycles(self):
        r = make_router(width_bytes=4, slice_bytes=4)   # 1 flit per cycle
        for port in range(4):
            r.inject(port, Flit(4, packet_id=port))
        served = [r.tick()[0][0] for _ in range(4)]
        assert sorted(served) == [0, 1, 2, 3]

    def test_fifo_order_within_an_input(self):
        r = make_router()
        flits = [Flit(6) for _ in range(5)]
        for f in flits:
            r.inject(0, f)
        order = []
        while r.pending:
            order.extend(f.flit_id for _, f in r.tick())
        assert order == [f.flit_id for f in flits]


class TestMonolithicBaseline:
    def test_one_flit_per_cycle_regardless_of_size(self):
        r = make_router(policy="monolithic")
        for port in range(4):
            r.inject(port, Flit(2))
        assert len(r.tick()) == 1
        assert len(r.tick()) == 1

    def test_greedy_beats_monolithic_on_small_flits(self):
        rng = random.Random(0)
        greedy = RouterTestbench(make_router(policy="greedy"),
                                 random.Random(1))
        mono = RouterTestbench(make_router(policy="monolithic"),
                               random.Random(1))
        for bench in (greedy, mono):
            bench.run(cycles=300, inject_prob=0.9, sizes=[1, 2, 4])
        assert greedy.router.throughput() > mono.router.throughput() * 2

    def test_policies_tie_on_full_width_flits(self):
        greedy = RouterTestbench(make_router(policy="greedy"),
                                 random.Random(2))
        mono = RouterTestbench(make_router(policy="monolithic"),
                               random.Random(2))
        for bench in (greedy, mono):
            bench.run(cycles=200, inject_prob=0.9, sizes=[16])
        assert greedy.router.throughput() == pytest.approx(
            mono.router.throughput(), rel=0.05)


class TestConservation:
    @given(st.integers(0, 2**31 - 1),
           st.sampled_from(["greedy", "monolithic"]),
           st.floats(0.1, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_every_accepted_flit_is_delivered_exactly_once(
            self, seed, policy, prob):
        bench = RouterTestbench(make_router(policy=policy),
                                random.Random(seed))
        bench.run(cycles=120, inject_prob=prob, sizes=[1, 2, 4, 8, 16])
        injected_ids = sorted(f.flit_id for _, f in bench.injected)
        delivered_ids = sorted(f.flit_id for _, f in bench.delivered)
        assert injected_ids == delivered_ids
        assert bench.router.pending == 0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_channel_utilization_bounded(self, seed):
        bench = RouterTestbench(make_router(), random.Random(seed))
        bench.run(cycles=100, inject_prob=0.8, sizes=[2, 4, 8])
        assert 0 <= bench.router.channel_utilization() <= 1
