"""Paper Table 1: area and power of SmarCo at 32 nm / 1.5 GHz.

The analytic model (McPAT/CACTI/Orion substitute) must reproduce the
paper's component breakdown.
"""

import pytest

from repro.analysis import render_table
from repro.config import smarco_default
from repro.power import AreaModel, PowerModel

PAPER = {
    "Cores": (634.32, 209.91),
    "Hierarchy Ring": (57.43, 14.55),
    "MACT": (1.43, 0.14),
    "SPM+Cache": (44.90, 1.84),
    "MC+PHY": (12.92, 13.65),
}
PAPER_TOTAL = (751.00, 240.09)


def _sweep():
    cfg = smarco_default()
    return AreaModel(cfg).breakdown(), PowerModel(cfg).breakdown()


def test_table1_area_power(benchmark, emit):
    area, power = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for comp, (paper_area, paper_power) in PAPER.items():
        rows.append([comp, round(area[comp], 2), paper_area,
                     round(power[comp], 2), paper_power])
    rows.append(["Total", round(sum(area.values()), 2), PAPER_TOTAL[0],
                 round(sum(power.values()), 2), PAPER_TOTAL[1]])
    emit("table1_area_power", render_table(
        ["component", "area mm2", "paper", "power W", "paper "],
        rows, title="Table 1: area & power at 32nm (model vs paper)"))

    for comp, (paper_area, paper_power) in PAPER.items():
        assert area[comp] == pytest.approx(paper_area, rel=0.01), comp
        assert power[comp] == pytest.approx(paper_power, rel=0.01), comp
    assert sum(area.values()) == pytest.approx(PAPER_TOTAL[0], rel=0.01)
    assert sum(power.values()) == pytest.approx(PAPER_TOTAL[1], rel=0.01)
