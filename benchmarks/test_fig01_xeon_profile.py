"""Paper Fig 1: HTC behaviour on a conventional processor.

(a) idle ratio of pipeline resources vs thread count;
(b) instruction-starvation ratio vs thread count;
(c) L1/L2/LLC miss ratios;
(d) average access latency per level.
"""

from repro.analysis import render_series, render_table
from repro.chip import XeonSystem
from repro.workloads import get_profile

THREAD_COUNTS = [1, 4, 16, 48, 96, 192]
WORKLOADS = ["wordcount", "search", "kmp"]


def _sweep():
    rows = {}
    for wl in WORKLOADS:
        profile = get_profile(wl)
        idle, starve = [], []
        last = None
        for n in THREAD_COUNTS:
            system = XeonSystem(seed=1, quantum_instrs=4000)
            # steady-state profile: all threads co-resident (no creation
            # ramp), long enough that warm-up does not dominate
            result = system.run_profile(profile, n, instrs_per_thread=160_000,
                                        stagger_creation=False)
            idle.append(result.idle_ratio)
            starve.append(result.starvation_ratio)
            last = result
        rows[wl] = {"idle": idle, "starve": starve, "final": last}
    return rows


def test_fig01_xeon_profile(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    idle_tbl = render_series(
        "threads", THREAD_COUNTS,
        {wl: [round(v, 3) for v in rows[wl]["idle"]] for wl in WORKLOADS},
        title="Fig 1(a): idle ratio of logical resources vs thread count",
    )
    starve_tbl = render_series(
        "threads", THREAD_COUNTS,
        {wl: [round(v, 3) for v in rows[wl]["starve"]] for wl in WORKLOADS},
        title="Fig 1(b): instruction starvation ratio vs thread count",
    )
    miss_rows = []
    lat_rows = []
    for wl in WORKLOADS:
        final = rows[wl]["final"]
        miss_rows.append([wl] + [round(final.miss_ratios[l], 3)
                                 for l in ("L1", "L2", "LLC")])
        lat_rows.append([wl] + [round(final.effective_latency[l], 1)
                                for l in ("L1", "L2", "LLC")])
    miss_tbl = render_table(["workload", "L1", "L2", "LLC"], miss_rows,
                            title="Fig 1(c): cache miss ratios (192 threads)")
    lat_tbl = render_table(["workload", "L1", "L2", "LLC"], lat_rows,
                           title="Fig 1(d): avg access latency (cycles)")
    emit("fig01_xeon_profile",
         "\n\n".join([idle_tbl, starve_tbl, miss_tbl, lat_tbl]))

    # index of the 48-thread point (the HW-context count)
    i48 = THREAD_COUNTS.index(48)
    for wl in WORKLOADS:
        idle = rows[wl]["idle"]
        # paper shape (a): idle ratio rises once threads oversubscribe the
        # 48 hardware contexts, and is substantial throughout
        assert idle[-1] > idle[i48]
        assert idle[-1] > 0.5
        # (b): starvation is non-trivial and grows under oversubscription
        starve = rows[wl]["starve"]
        assert starve[-1] > starve[i48]
        assert starve[-1] > 0.05
        # (c): multi-level caches suffer (high L1 misses for HTC)
        final = rows[wl]["final"]
        assert final.miss_ratios["L1"] > 0.2
        # (d): latency grows down the hierarchy from L1
        lat = final.effective_latency
        assert lat["L1"] < lat["L2"]
        assert lat["LLC"] >= 42        # at least the LLC hit latency
