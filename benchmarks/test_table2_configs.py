"""Paper Table 2: hardware parameters of the Xeon E7-8890V4 vs SmarCo."""

import pytest

from repro.analysis import render_table
from repro.config import smarco_default, xeon_default

MB = 1024 * 1024
GB = 1024 * MB


def _sweep():
    return smarco_default(), xeon_default()


def test_table2_configs(benchmark, emit):
    smarco, xeon = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        ["Cores", f"{xeon.cores} cores, {xeon.total_hw_threads} threads",
         f"{smarco.total_cores} cores, {smarco.total_hw_threads} threads"],
        ["Frequency", f"{xeon.frequency_ghz}-{xeon.turbo_ghz} GHz",
         f"{smarco.frequency_ghz} GHz"],
        ["L1 I$", f"{xeon.cores * xeon.l1i_bytes / MB:.2f} MB",
         f"{smarco.total_icache_bytes // MB} MB"],
        ["L1 D$", f"{xeon.cores * xeon.l1d_bytes / MB:.2f} MB",
         f"{smarco.total_dcache_bytes // MB} MB"],
        ["L2 / SPM", f"{xeon.cores * xeon.l2_bytes // MB} MB L2",
         f"{smarco.total_spm_bytes // MB} MB SPM"],
        ["LLC", f"{xeon.llc_bytes // MB} MB", "-"],
        ["NoC", "QPI", f"hier ring {smarco.ring.sub_ring_bits}b sub / "
         f"{smarco.ring.main_ring_bits}b main"],
        ["Memory", f"{xeon.memory_bandwidth_gbps:.0f} GB/s",
         f"{smarco.memory.peak_bandwidth_gbps:.1f} GB/s, "
         f"{smarco.memory.total_bytes // GB} GB"],
        ["Process", f"{xeon.technology_nm} nm", f"{smarco.technology_nm} nm"],
        ["Power", f"{xeon.tdp_watts:.0f} W", "240 W"],
    ]
    emit("table2_configs", render_table(
        ["parameter", "Xeon E7-8890V4", "SmarCo"], rows,
        title="Table 2: hardware configurations"))

    # paper's headline parameters
    assert smarco.total_cores == 256
    assert smarco.total_hw_threads == 2048
    assert smarco.total_spm_bytes == 32 * MB
    assert smarco.memory.peak_bandwidth_gbps == pytest.approx(136.5, rel=0.01)
    assert smarco.memory.total_bytes == 64 * GB
    assert xeon.cores == 24 and xeon.total_hw_threads == 48
    assert xeon.llc_bytes == 60 * MB
    assert xeon.memory_bandwidth_gbps == 85.0
