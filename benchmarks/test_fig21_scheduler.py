"""Paper Fig 21: laxity-aware HW scheduler vs software Deadline scheduler.

RNC task set: 128 task threads resident on one sub-ring, 64 running at a
time (4 of 8 threads per core), hard deadline at 340 000 cycles.

Paper findings: the software Deadline scheduler spreads exits over
320k-354k cycles (some past the deadline); the hardware laxity-aware
scheduler tightens the spread to 334k-342k and improves the overall
success rate, even though its earliest exit is later.
"""

from repro.analysis import render_table
from repro.sched import Task, TimeSharedTestbed
from repro.sim import RngTree

N_TASKS = 128
SLOTS = 64             # 16 cores x 4 running threads on one sub-ring
DEADLINE = 340_000


def _tasks(seed=21):
    rng = RngTree(seed).stream("fig21")
    # all procedures share the deadline; work varies per connection event;
    # fair time-sharing over 64 slots maps work w to an exit near 2w
    return [Task(work_cycles=rng.uniform(160_000, 176_000), deadline=DEADLINE)
            for _ in range(N_TASKS)]


def _sweep():
    edf = TimeSharedTestbed(slots=SLOTS, policy="fair",
                            quantum=8192).run(_tasks())
    lax = TimeSharedTestbed(slots=SLOTS, policy="laxity",
                            quantum=1024).run(_tasks())
    return edf, lax


def test_fig21_scheduler(benchmark, emit):
    edf, lax = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    emit("fig21_scheduler", render_table(
        ["scheduler", "earliest exit", "latest exit", "spread",
         "success rate"],
        [["Deadline (software)", round(edf.earliest), round(edf.latest),
          round(edf.spread), round(edf.success_rate, 3)],
         ["Laxity-aware (hardware)", round(lax.earliest), round(lax.latest),
          round(lax.spread), round(lax.success_rate, 3)]],
        title=f"Fig 21: task exit times (deadline = {DEADLINE} cycles)",
    ))

    # every task exits under both schedulers
    assert len(edf.exit_times) == len(lax.exit_times) == N_TASKS
    # paper panel ranges: software ~320k-354k, hardware ~334k-342k
    assert 0.9 * 320_000 < edf.earliest < 1.05 * 320_000
    assert lax.latest < 0.98 * 354_000
    # the hardware scheduler tightens the exit spread dramatically
    assert lax.spread < edf.spread * 0.5
    # ...and improves the deadline success rate
    assert lax.success_rate > edf.success_rate
    assert lax.success_rate == 1.0
    # its earliest exit is later (paper: "the execution time of the
    # earliest exit thread is greater than that of the left figure")
    assert lax.earliest > edf.earliest
