"""Shared fixtures for the paper-figure benchmark harness.

Every bench regenerates one table or figure of the paper: it prints the
same rows/series the paper reports, writes them under
``benchmarks/results/``, and asserts the paper's *shape* (who wins, by
roughly what factor, where knees/crossovers fall).

Scale: benches default to a scaled chip (fewer sub-rings / shorter
instruction streams) so the whole suite completes in minutes; set
``REPRO_FULL=1`` to run the full 256-core geometry.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture
def emit(request):
    """Print a rendered figure/table and persist it to results/."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _emit


@pytest.fixture
def chip_scale():
    """(sub_rings, cores_per_sub_ring, instrs_per_thread) for chip benches."""
    if FULL_SCALE:
        return 16, 16, 300
    return 4, 16, 250


@pytest.fixture
def exp_runner():
    """The shared sweep runner for sweep-shaped benches.

    Workers come from ``REPRO_WORKERS`` (CI pins 2; default serial).
    The result cache lives under ``benchmarks/results/cache`` and is
    keyed on a digest of the simulator sources, so re-running a bench
    skips already-simulated points but any code edit re-simulates.
    """
    from repro.exp import Runner

    return Runner(base_dir=RESULTS_DIR)
