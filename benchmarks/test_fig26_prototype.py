"""Paper Fig 26: the TSMC 40nm prototype's energy efficiency.

The taped-out prototype supports 256 threads (32 TCG cores, an eighth of
the full design) on the older 40 nm node, clocked lower than the 32 nm
projection, and ships as a PCIe accelerator card (board + DDR overhead).
Its energy-efficiency gain over the Xeon drops to 2.05x-6.84x (average
3.85x) from the 32 nm projection's 3.34x-12.77x (Fig 22).
"""

import dataclasses

from repro.analysis import geometric_mean, render_table
from repro.chip import SmarCoChip, run_xeon
from repro.config import smarco_scaled
from repro.power import PowerModel, XeonPowerModel
from repro.workloads import HTC_PROFILES, get_profile

WORKLOADS = list(HTC_PROFILES)
PROTO_FREQUENCY_GHZ = 1.0       # 40nm tapeout clocks below the 32nm target
BOARD_OVERHEAD_W = 60.0         # card DDR DIMMs + PCIe + VRM + cooling


def _prototype_config():
    # 32 cores x 8 threads = the prototype's 256 threads
    base = smarco_scaled(2, 16)
    return dataclasses.replace(base, frequency_ghz=PROTO_FREQUENCY_GHZ,
                               technology_nm=40)


def _gain(workload, cfg, instrs):
    chip = SmarCoChip(cfg, seed=26)
    chip.load_profile(get_profile(workload), threads_per_core=8,
                      instrs_per_thread=instrs)
    smarco = chip.run()
    xeon = run_xeon(workload, n_threads=48, instrs_per_thread=30_000,
                    seed=26)
    smarco_watts = PowerModel(cfg).total_watts(
        utilization=max(0.5, smarco.utilization), technology_nm=40,
    ) + BOARD_OVERHEAD_W
    xeon_watts = XeonPowerModel().total_watts(
        utilization=max(0.1, xeon.utilization))
    smarco_eff = smarco.throughput_ips / smarco_watts
    xeon_eff = xeon.throughput_ips / xeon_watts
    return smarco_eff / xeon_eff


def test_fig26_prototype(benchmark, emit, chip_scale):
    _, _, instrs = chip_scale
    cfg = _prototype_config()

    def sweep():
        return {wl: _gain(wl, cfg, instrs) for wl in WORKLOADS}

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[wl, round(gains[wl], 2)] for wl in WORKLOADS]
    rows.append(["geomean", round(geometric_mean(list(gains.values())), 2)])
    emit("fig26_prototype", render_table(
        ["workload", "energy-eff gain (x)"], rows,
        title="Fig 26: 40nm 256-thread prototype energy efficiency "
              "(SmarCo over Xeon)"))

    # the prototype still beats the Xeon on energy efficiency...
    for wl in WORKLOADS:
        assert gains[wl] > 1.2, (wl, gains[wl])
    # ...in the paper's band (2.05x-6.84x, average 3.85x)
    mean_gain = geometric_mean(list(gains.values()))
    assert 2.0 < mean_gain < 8.0, mean_gain
    assert max(gains.values()) < 12.0
