"""Ablation (DESIGN.md §5): the star-shaped direct datapath under
congestion (paper §3.5.2).

Real-time reads may bypass the congested rings over a dedicated per-sub-
ring channel; the paper adds it to protect hard-real-time requests
"especially when the ring network is in heavy congestion".
"""

import dataclasses

from repro.analysis import render_table
from repro.chip import SmarCoChip
from repro.config import RingConfig, smarco_scaled
from repro.workloads import get_profile

REALTIME_FRACTION = 0.3


def _run(direct_enabled, instrs):
    base = smarco_scaled(2, 8)
    cfg = dataclasses.replace(
        base, ring=RingConfig(direct_datapath=direct_enabled))
    chip = SmarCoChip(cfg, seed=42, realtime_fraction=REALTIME_FRACTION)
    chip.load_profile(get_profile("rnc"), threads_per_core=8,
                      instrs_per_thread=instrs)
    result = chip.run()
    direct_count = chip.direct.delivered.value if chip.direct else 0
    return result, direct_count


def test_ablation_directpath(benchmark, emit, chip_scale):
    instrs = chip_scale[2]

    def sweep():
        return _run(True, instrs), _run(False, instrs)

    (with_dp, dp_count), (without_dp, _zero) = benchmark.pedantic(
        sweep, rounds=1, iterations=1)

    emit("ablation_directpath", render_table(
        ["configuration", "cycles", "mean req latency", "direct deliveries"],
        [["direct datapath ON", round(with_dp.cycles),
          round(with_dp.mean_request_latency, 1), dp_count],
         ["direct datapath OFF", round(without_dp.cycles),
          round(without_dp.mean_request_latency, 1), 0]],
        title="Ablation: star-shaped direct datapath (RNC, 30% real-time)",
    ))

    # the star path actually carries traffic
    assert dp_count > 0
    # bypassing the rings lowers mean request latency under load
    assert with_dp.mean_request_latency < without_dp.mean_request_latency
    # and does not hurt completion time
    assert with_dp.cycles <= without_dp.cycles * 1.1
