"""Paper Fig 17: per-core IPC vs thread count (1-8) on one TCG.

Paper shape: IPC grows almost linearly from 1 to 4 threads (4-issue
pipeline, one slot per thread), grows more slowly from 4 to 8 as in-pair
threading engages — except *search*, whose low memory-instruction ratio
cannot exploit pairing (it flattens/dips slightly).

Ablation (DESIGN.md §5): in-pair vs blocking (no pairing) vs coarse-
grained global scheduling at 8 threads.
"""

from repro.analysis import render_series, render_table
from repro.core import FixedLatencyPort, TCGCore
from repro.sim import RngTree, Simulator
from repro.workloads import HTC_PROFILES, get_profile

THREADS = [1, 2, 4, 6, 8]
INSTRS = 12_000
MEM_LATENCY = 150.0


def _core_ipc(workload, n_threads, policy="inpair", seed=0):
    sim = Simulator()
    port = FixedLatencyPort(sim, MEM_LATENCY)
    core = TCGCore(sim, 0, port, policy=policy)
    profile = get_profile(workload)
    rng_tree = RngTree(seed)
    for t in range(n_threads):
        core.add_thread(profile.stream(
            INSTRS, rng_tree.stream(f"{workload}.{t}"), thread_id=t,
            gang_size=n_threads, gang_rank=t,
        ))
    core.start()
    sim.run()
    return core.ipc


def _sweep():
    series = {wl: [_core_ipc(wl, n) for n in THREADS]
              for wl in HTC_PROFILES}
    ablation = {policy: _core_ipc("kmp", 8 if policy != "blocking" else 4,
                                  policy=policy)
                for policy in ("inpair", "blocking", "coarse")}
    return series, ablation


def test_fig17_tcg_ipc(benchmark, emit):
    series, ablation = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    fig = render_series(
        "threads", THREADS,
        {wl: [round(v, 2) for v in vals] for wl, vals in series.items()},
        title="Fig 17: per-core IPC vs thread count",
    )
    abl = render_table(
        ["policy", "threads", "IPC"],
        [["inpair", 8, round(ablation["inpair"], 2)],
         ["coarse", 8, round(ablation["coarse"], 2)],
         ["blocking (no pairing)", 4, round(ablation["blocking"], 2)]],
        title="Ablation: thread scheduling policy (kmp)",
    )
    emit("fig17_tcg_ipc", fig + "\n\n" + abl)

    for wl, vals in series.items():
        ipc1, ipc2, ipc4, ipc6, ipc8 = vals
        # near-linear growth 1 -> 4 (each thread owns an issue slot)
        assert ipc2 > ipc1 * 1.6, wl
        assert ipc4 > ipc1 * 3.0, wl
        # the pipeline is 4-wide: IPC never exceeds 4
        assert ipc8 <= 4.0, wl
        if wl == "search":
            # search cannot exploit pairing: flat or slightly down 4 -> 8
            assert ipc8 < ipc4 * 1.10
        else:
            # pairing keeps helping past 4 threads
            assert ipc8 > ipc4 * 1.02, wl
            # ...but sublinearly (slots are shared by pairs)
            assert ipc8 < ipc4 * 1.9, wl

    # ablation: pairing beats blocking-at-4 and tracks coarse scheduling
    assert ablation["inpair"] > ablation["blocking"]
    assert ablation["inpair"] > ablation["coarse"] * 0.8
