"""Paper Fig 17: per-core IPC vs thread count (1-8) on one TCG.

Paper shape: IPC grows almost linearly from 1 to 4 threads (4-issue
pipeline, one slot per thread), grows more slowly from 4 to 8 as in-pair
threading engages — except *search*, whose low memory-instruction ratio
cannot exploit pairing (it flattens/dips slightly).

Ablation (DESIGN.md §5): in-pair vs blocking (no pairing) vs coarse-
grained global scheduling at 8 threads.

The whole grid (workload x thread-count, plus the ablation points) is one
``ExperimentSpec`` executed through the parallel experiment runner, so it
fans out across ``REPRO_WORKERS`` processes and re-runs are cache hits.
"""

from repro.analysis import render_series, render_table
from repro.exp import ExperimentSpec, RunRequest
from repro.workloads import HTC_PROFILES

THREADS = [1, 2, 4, 6, 8]
INSTRS = 12_000
MEM_LATENCY = 150.0


def _request(workload, n_threads, policy="inpair", seed=0):
    return RunRequest(kind="tcg", workload=workload, seed=seed,
                      threads_per_core=n_threads, instrs_per_thread=INSTRS,
                      core_policy=policy, mem_latency=MEM_LATENCY)


def test_fig17_tcg_ipc(benchmark, emit, exp_runner):
    workloads = list(HTC_PROFILES)
    grid = [_request(wl, n) for wl in workloads for n in THREADS]
    ablation_points = [_request("kmp", 8, "inpair"),
                       _request("kmp", 8, "coarse"),
                       _request("kmp", 4, "blocking")]
    spec = ExperimentSpec.explicit("fig17_tcg_ipc", grid + ablation_points)

    def sweep():
        results = exp_runner.run(spec).results
        series = {}
        for i, wl in enumerate(workloads):
            chunk = results[i * len(THREADS):(i + 1) * len(THREADS)]
            series[wl] = [r.ipc for r in chunk]
        ablation = {r.policy: r.ipc for r in results[len(grid):]}
        return series, ablation

    series, ablation = benchmark.pedantic(sweep, rounds=1, iterations=1)

    fig = render_series(
        "threads", THREADS,
        {wl: [round(v, 2) for v in vals] for wl, vals in series.items()},
        title="Fig 17: per-core IPC vs thread count",
    )
    abl = render_table(
        ["policy", "threads", "IPC"],
        [["inpair", 8, round(ablation["inpair"], 2)],
         ["coarse", 8, round(ablation["coarse"], 2)],
         ["blocking (no pairing)", 4, round(ablation["blocking"], 2)]],
        title="Ablation: thread scheduling policy (kmp)",
    )
    emit("fig17_tcg_ipc", fig + "\n\n" + abl)

    for wl, vals in series.items():
        ipc1, ipc2, ipc4, ipc6, ipc8 = vals
        # near-linear growth 1 -> 4 (each thread owns an issue slot)
        assert ipc2 > ipc1 * 1.6, wl
        assert ipc4 > ipc1 * 3.0, wl
        # the pipeline is 4-wide: IPC never exceeds 4
        assert ipc8 <= 4.0, wl
        if wl == "search":
            # search cannot exploit pairing: flat or slightly down 4 -> 8
            assert ipc8 < ipc4 * 1.10
        else:
            # pairing keeps helping past 4 threads
            assert ipc8 > ipc4 * 1.02, wl
            # ...but sublinearly (slots are shared by pairs)
            assert ipc8 < ipc4 * 1.9, wl

    # ablation: pairing beats blocking-at-4 and tracks coarse scheduling
    assert ablation["inpair"] > ablation["blocking"]
    assert ablation["inpair"] > ablation["coarse"] * 0.8
