"""Ablation (paper §3.1.1): thread scheduling policies at chip level.

Fig 17 evaluates scheduling on a single core with a fixed memory
latency; this bench repeats the in-pair / blocking / coarse comparison on
the assembled chip, where memory latency is produced by the real
MACT + NoC + DRAM path — pairing must still win under self-induced
congestion.
"""

from repro.analysis import render_table
from repro.chip import SmarCoChip
from repro.config import smarco_scaled
from repro.workloads import get_profile

WORKLOAD = "kmp"


def _run(policy, threads_per_core, instrs):
    chip = SmarCoChip(smarco_scaled(2, 8), seed=55, core_policy=policy)
    chip.load_profile(get_profile(WORKLOAD),
                      threads_per_core=threads_per_core,
                      instrs_per_thread=instrs)
    return chip.run()


def test_ablation_inpair_chip(benchmark, emit, chip_scale):
    instrs = chip_scale[2]

    def sweep():
        return {
            "inpair@8": _run("inpair", 8, instrs),
            "coarse@8": _run("coarse", 8, instrs),
            "blocking@4": _run("blocking", 4, instrs),
            "inpair@4": _run("inpair", 4, instrs),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit("ablation_inpair_chip", render_table(
        ["policy", "threads/core", "throughput (Ginstr/s)",
         "mean req latency"],
        [[name.split("@")[0], name.split("@")[1],
          round(r.throughput_ips / 1e9, 2),
          round(r.mean_request_latency, 1)]
         for name, r in results.items()],
        title=f"Ablation: thread scheduling on the chip ({WORKLOAD})",
    ))

    tput = {name: r.throughput_ips for name, r in results.items()}
    # pairing (8 threads) beats both a blocking core and 4-thread in-pair
    assert tput["inpair@8"] > tput["blocking@4"]
    assert tput["inpair@8"] > tput["inpair@4"]
    # simple pairing stays within reach of the heavier coarse scheduler
    assert tput["inpair@8"] > tput["coarse@8"] * 0.75
