"""Paper Fig 2: a conventional processor under a CDN video service.

10 Gbps NIC, 25 Mbps streams: as connections approach the NIC limit, CPU
utilisation stays under 10 %, the branch miss ratio exceeds 10 %, and the
L1 miss ratio reaches ~40 %.
"""

from repro.analysis import render_table
from repro.workloads import CdnConfig, CdnModel


def _sweep():
    return CdnModel(CdnConfig()).sweep(points=8)


def test_fig02_cdn(benchmark, emit):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [[p.connections, round(p.nic_utilization, 3),
             round(p.cpu_utilization, 4), round(p.branch_miss_ratio, 3),
             round(p.l1_miss_ratio, 3)]
            for p in points]
    emit("fig02_cdn", render_table(
        ["connections", "NIC util", "CPU util", "branch miss", "L1 miss"],
        rows, title="Fig 2: conventional processor under a CDN workload"))

    limit = points[-1]
    assert limit.connections == 400                 # 10 Gbps / 25 Mbps
    assert limit.nic_utilization == 1.0             # NIC saturated...
    assert limit.cpu_utilization < 0.10             # ...CPU under 10%
    assert limit.branch_miss_ratio > 0.10           # branch miss exceeds 10%
    assert 0.3 <= limit.l1_miss_ratio <= 0.55       # L1 miss about 40%
    # curves are monotone in offered load
    for a, b in zip(points, points[1:]):
        assert b.nic_utilization >= a.nic_utilization
        assert b.cpu_utilization >= a.cpu_utilization
        assert b.branch_miss_ratio >= a.branch_miss_ratio
        assert b.l1_miss_ratio >= a.l1_miss_ratio - 0.02
