"""Paper Fig 19: MACT time-threshold sweep.

Speedup (normalised to the 8-cycle threshold) for thresholds 4..64.
Paper finding: 16 cycles is best for most benchmarks — short thresholds
forfeit batching, long ones delay every collected request.

The workload x threshold grid goes through the parallel experiment
runner: the threshold axis is a ``smarco_config`` axis (each value a
config with a different ``MACTConfig.threshold_cycles``).
"""

import dataclasses

from repro.analysis import render_series
from repro.config import MACTConfig, smarco_scaled
from repro.exp import ExperimentSpec, RunRequest

THRESHOLDS = [4, 8, 16, 32, 64]
WORKLOADS = ["wordcount", "terasort", "kmp", "rnc"]


def _config(threshold, sub_rings, cores):
    base = smarco_scaled(sub_rings, cores)
    return dataclasses.replace(base,
                               mact=MACTConfig(threshold_cycles=threshold))


def test_fig19_mact_threshold(benchmark, emit, chip_scale, exp_runner):
    sub_rings, cores, instrs = 2, 8, chip_scale[2]   # small chip: 20 runs

    spec = ExperimentSpec.grid(
        "fig19_mact_threshold",
        RunRequest(kind="smarco", seed=19, threads_per_core=8,
                   instrs_per_thread=instrs),
        workload=WORKLOADS,
        smarco_config=[_config(t, sub_rings, cores) for t in THRESHOLDS],
    )

    def sweep():
        results = exp_runner.run(spec).results
        series = {}
        for i, wl in enumerate(WORKLOADS):
            chunk = results[i * len(THRESHOLDS):(i + 1) * len(THRESHOLDS)]
            tputs = [r.throughput_ips for r in chunk]
            base = tputs[THRESHOLDS.index(8)]
            series[wl] = [t / base for t in tputs]
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit("fig19_mact_threshold", render_series(
        "threshold", THRESHOLDS,
        {wl: [round(v, 3) for v in vals] for wl, vals in series.items()},
        title="Fig 19: speedup vs MACT time threshold (normalised to 8 cycles)",
    ))

    for wl, vals in series.items():
        by_threshold = dict(zip(THRESHOLDS, vals))
        # the paper's chosen 16 cycles is within a few percent of the best
        # threshold (at our scaled request rates the knee sits at 8-16)
        assert by_threshold[16] >= max(vals) * 0.94, (wl, by_threshold)
        # long thresholds delay every collected request: 64 never beats 16
        assert by_threshold[64] <= by_threshold[16] * 1.02, (wl, by_threshold)
        # the sweep stays in a sane band (threshold is a second-order knob)
        assert all(0.7 < v < 1.4 for v in vals), (wl, vals)
