"""Paper Fig 18: high-density NoC throughput vs channel slice width.

Slicing the ring datapaths into narrower self-governed channels
(16B -> 2B) raises delivered packets per cycle; benchmarks with more
small-granularity packets (KMP, RNC) gain most, K-means (no 1-2B
packets) gains least from the final 4B -> 2B step.

Ablation: the paper's greedy slice allocator vs the conventional
monolithic link at 2B slicing.
"""

from repro.analysis import render_series, render_table
from repro.noc import run_uniform_traffic
from repro.workloads import HTC_PROFILES

SLICE_WIDTHS = [16, 8, 4, 2]
CYCLES = 800
# Every workload offers the same BYTE load; apps with small packets thus
# offer many more packets and hit the per-link packet limit of wide
# slicing first — the effect Fig 18 plots.
TARGET_BYTES_PER_CORE = 1.7


def _rate(workload):
    mean_gran = HTC_PROFILES[workload].granularity.mean()
    return min(0.95, TARGET_BYTES_PER_CORE / mean_gran)


def _throughput(workload, slice_bytes, greedy=True):
    profile = HTC_PROFILES[workload]
    result = run_uniform_traffic(
        sub_rings=2, cores_per_sub_ring=8,
        dist=profile.granularity, slice_bytes=slice_bytes,
        injection_rate=_rate(workload), cycles=CYCLES, greedy=greedy,
        seed=18,
    )
    return result.throughput


def _sweep():
    series = {}
    for wl in HTC_PROFILES:
        series[wl] = [_throughput(wl, w) for w in SLICE_WIDTHS]
    ablation = {
        "greedy@2B": _throughput("kmp", 2, greedy=True),
        "monolithic": _throughput("kmp", 2, greedy=False),
    }
    return series, ablation


def test_fig18_hdnoc(benchmark, emit):
    series, ablation = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    # normalise to the 16B (conventional-width) point, as the paper plots
    # "improvement of throughput rate"
    norm = {wl: [v / vals[0] for v in vals] for wl, vals in series.items()}
    fig = render_series(
        "slice_bytes", SLICE_WIDTHS,
        {wl: [round(v, 3) for v in vals] for wl, vals in norm.items()},
        title="Fig 18: throughput improvement vs channel slice width "
              "(normalised to 16B)",
    )
    abl = render_table(
        ["link", "packets/cycle"],
        [["greedy 2B slices", round(ablation["greedy@2B"], 3)],
         ["monolithic (conventional)", round(ablation["monolithic"], 3)]],
        title="Ablation: greedy slice allocation vs conventional link (kmp)",
    )
    emit("fig18_hdnoc", fig + "\n\n" + abl)

    for wl, vals in norm.items():
        # narrower slices never hurt, and 2B is at least the wide link
        assert vals[-1] >= vals[0] * 0.98, wl
        assert vals[-1] >= 0.99, wl
    # the apps with the most small packets gain the most from slicing
    final_gain = {wl: vals[-1] for wl, vals in norm.items()}
    top_two = sorted(final_gain, key=final_gain.get, reverse=True)[:2]
    assert set(top_two) == {"kmp", "rnc"}, final_gain
    # K-means has no 1-2B packets: slicing brings it ~nothing
    assert final_gain["kmeans"] < 1.05
    # the greedy allocator beats the conventional monolithic link
    assert ablation["greedy@2B"] > ablation["monolithic"]
