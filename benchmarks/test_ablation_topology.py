"""Ablation (DESIGN.md §5): hierarchical ring vs flat ring vs mesh.

The paper chooses a hierarchical ring over a mesh for simpler, cheaper
routers (lower per-hop cost, more predictable latency) and over one flat
ring for scalability (a 256-stop ring has a 128-hop diameter).  This
bench measures memory-pattern traffic latency on all three.
"""

from repro.analysis import render_table
from repro.noc import (
    GranularityDist,
    HierarchicalRingNoC,
    MeshNoC,
    NodeId,
    Packet,
    PacketKind,
    Ring,
)
from repro.sim import RngTree, Simulator

CORES = 64                     # 4 sub-rings x 16 cores
PACKETS = 1500
DIST = GranularityDist(((2, 0.4), (4, 0.3), (8, 0.2), (16, 0.1)))


def _random_pairs(rng, n):
    pairs = []
    for _ in range(n):
        src = rng.randrange(CORES)
        dst = rng.randrange(CORES)
        if dst == src:
            dst = (dst + 1) % CORES
        pairs.append((src, dst, DIST.sample(rng)))
    return pairs


def _run_hier(pairs):
    sim = Simulator()
    noc = HierarchicalRingNoC(sim, 4, 16, 4)
    t = 0.0
    for src, dst, size in pairs:
        pkt = Packet(src=NodeId("core", src // 16, src % 16),
                     dst=NodeId("core", dst // 16, dst % 16),
                     size_bytes=size, kind=PacketKind.MEM_READ)
        sim.schedule_at(t, noc.send, pkt)
        t += 1.0
    sim.run()
    return noc.mean_latency()


def _run_flat(pairs):
    sim = Simulator()
    ring = Ring(sim, "flat", CORES, datapath_bytes=8, fixed_per_dir=1,
                bidi_datapaths=2, slice_bytes=2)
    latencies = []
    t = 0.0
    for src, dst, size in pairs:
        pkt = Packet(src=NodeId("core", 0, src), dst=NodeId("core", 0, dst),
                     size_bytes=size, kind=PacketKind.MEM_READ,
                     on_delivered=lambda p, now: latencies.append(p.latency))
        def go(p=pkt, s=src, d=dst):
            p.created_at = sim.now
            ring.send(p, s, d)
        sim.schedule_at(t, go)
        t += 1.0
    sim.run()
    return sum(latencies) / len(latencies)


def _run_mesh(pairs):
    sim = Simulator()
    mesh = MeshNoC(sim, 8, 8)
    t = 0.0
    for src, dst, size in pairs:
        pkt = Packet(src=NodeId("core", 0, src), dst=NodeId("core", 0, dst),
                     size_bytes=size, kind=PacketKind.MEM_READ)
        sim.schedule_at(t, mesh.send, pkt, src, dst)
        t += 1.0
    sim.run()
    return mesh.latency.mean, mesh.hop_count.mean


def _router_ports():
    """Router port counts: the paper's 'less on-chip resources' claim.

    A ring router has 3 ports (2 ring + local); the bridge routers have
    4; a mesh router has up to 5 (4 neighbours + local).
    """
    hier = 4 * 17 * 3 + 4 * 4           # sub-ring stops + bridges
    mesh = sum(2 + (0 < x < 7) + (0 < y < 7) + 1 + 1
               for x in range(8) for y in range(8))
    return hier, mesh


def test_ablation_topology(benchmark, emit):
    pairs = _random_pairs(RngTree(64).stream("topo"), PACKETS)

    def sweep():
        mesh_lat, mesh_hops = _run_mesh(pairs)
        return {
            "hier_lat": _run_hier(pairs),
            "flat_lat": _run_flat(pairs),
            "mesh_lat": mesh_lat,
            "mesh_hops": mesh_hops,
        }

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    hier_ports, mesh_ports = _router_ports()

    emit("ablation_topology", render_table(
        ["topology", "mean latency (cycles)", "router ports"],
        [["hierarchical ring", round(data["hier_lat"], 2), hier_ports],
         ["flat 64-stop ring", round(data["flat_lat"], 2), 64 * 3],
         ["8x8 mesh", round(data["mesh_lat"], 2), mesh_ports]],
        title="Ablation: 64-core uniform-random traffic by topology",
    ))

    # the hierarchy fixes the flat ring's diameter problem
    assert data["hier_lat"] < data["flat_lat"]
    # mesh wins raw uniform-random latency only through its much more
    # expensive routers: per-hop cost on the ring is lower...
    mesh_per_hop = data["mesh_lat"] / data["mesh_hops"]
    # hierarchical ring hop cost = router(1) + hop(1) + transmit(>=1)
    assert mesh_per_hop > 3.5
    # ...and the ring needs fewer router ports (cheaper, simpler NoC)
    assert hier_ports < mesh_ports
    # the latency penalty the ring pays for that is bounded
    assert data["hier_lat"] < data["mesh_lat"] * 1.6
