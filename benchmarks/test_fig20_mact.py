"""Paper Fig 20: MACT vs conventional (no collection) structure.

Four panels per benchmark: execution speedup, memory-request latency,
NoC bandwidth utilisation, and the number of memory transactions.
Paper findings: small-granularity benchmarks speed up and send far fewer
transactions; K-means (large accesses, latency-sensitive) slows slightly
(<1 speedup) because collection delays its requests.
"""

import dataclasses

from repro.analysis import render_table
from repro.chip import SmarCoChip
from repro.config import MACTConfig, smarco_scaled
from repro.workloads import HTC_PROFILES, get_profile

WORKLOADS = list(HTC_PROFILES)


def _run(workload, enabled, scale):
    sub_rings, cores, instrs = scale
    base = smarco_scaled(sub_rings, cores)
    cfg = dataclasses.replace(base, mact=MACTConfig(enabled=enabled))
    chip = SmarCoChip(cfg, seed=20)
    chip.load_profile(get_profile(workload), threads_per_core=8,
                      instrs_per_thread=instrs)
    return chip.run()


def test_fig20_mact(benchmark, emit, chip_scale):
    scale = (2, 8, chip_scale[2])

    def sweep():
        rows = {}
        for wl in WORKLOADS:
            with_mact = _run(wl, True, scale)
            without = _run(wl, False, scale)
            rows[wl] = {
                "speedup": without.cycles / with_mact.cycles,
                "latency_ratio": (with_mact.mean_request_latency
                                  / without.mean_request_latency),
                "bw_util_ratio": (with_mact.noc_bandwidth_utilization
                                  / max(1e-12, without.noc_bandwidth_utilization)),
                "request_ratio": (with_mact.mem_transactions
                                  / max(1, without.mem_transactions)),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit("fig20_mact", render_table(
        ["workload", "speedup", "req latency (x)", "NoC BW util (x)",
         "#transactions (x)"],
        [[wl,
          round(rows[wl]["speedup"], 3),
          round(rows[wl]["latency_ratio"], 3),
          round(rows[wl]["bw_util_ratio"], 3),
          round(rows[wl]["request_ratio"], 3)]
         for wl in WORKLOADS],
        title="Fig 20: MACT vs conventional structure (MACT / conventional)",
    ))

    for wl in WORKLOADS:
        # collection reduces the number of memory transactions
        assert rows[wl]["request_ratio"] <= 1.0, wl
    # small-granularity benchmarks batch hardest
    assert rows["kmp"]["request_ratio"] < 0.95
    # most benchmarks do not lose performance; the overall effect is a win
    wins = sum(1 for wl in WORKLOADS if rows[wl]["speedup"] >= 0.99)
    assert wins >= 4, {wl: rows[wl]["speedup"] for wl in WORKLOADS}
    # collection trades a bounded amount of latency for fewer requests:
    # no benchmark's request latency explodes
    for wl in WORKLOADS:
        assert rows[wl]["latency_ratio"] < 1.5, wl
