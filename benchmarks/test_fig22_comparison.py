"""Paper Fig 22: SmarCo vs Intel Xeon E7-8890V4, six HTC benchmarks.

Paper results: 4.86x-18.57x speedup (average 10.11x) and 3.34x-12.77x
energy-efficiency gain (average 6.95x).

Scaled run: the SmarCo side uses the scaled chip geometry from
``chip_scale`` (full 256-core geometry with REPRO_FULL=1) against the
full 24-core Xeon model; the paper's *shape* — SmarCo wins every
benchmark by roughly an order of magnitude in performance and severalfold
in energy efficiency — is what the assertions pin down.
"""

from repro.analysis import geometric_mean, render_table
from repro.chip import compare
from repro.config import smarco_scaled
from repro.workloads import HTC_PROFILES

WORKLOADS = list(HTC_PROFILES)


def test_fig22_comparison(benchmark, emit, chip_scale):
    sub_rings, cores, instrs = chip_scale
    cfg = smarco_scaled(sub_rings, cores)

    def sweep():
        return {
            wl: compare(wl, smarco_config=cfg,
                        smarco_threads_per_core=8,
                        smarco_instrs_per_thread=instrs,
                        xeon_threads=48,
                        xeon_instrs_per_thread=30_000,
                        seed=22)
            for wl in WORKLOADS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    speedups = {wl: r.speedup for wl, r in results.items()}
    gains = {wl: r.energy_efficiency_gain for wl, r in results.items()}
    rows = [[wl, round(speedups[wl], 2), round(gains[wl], 2)]
            for wl in WORKLOADS]
    rows.append(["geomean", round(geometric_mean(list(speedups.values())), 2),
                 round(geometric_mean(list(gains.values())), 2)])
    emit("fig22_comparison", render_table(
        ["workload", "speedup (x)", "energy-eff gain (x)"], rows,
        title="Fig 22: SmarCo over Xeon E7-8890V4 "
              f"({cfg.total_cores}-core scaled SmarCo)"))

    # SmarCo wins every benchmark on both axes
    for wl in WORKLOADS:
        assert speedups[wl] > 1.5, (wl, speedups[wl])
        assert gains[wl] > 1.0, (wl, gains[wl])
    # the average speedup lands in the paper's order of magnitude
    mean_speedup = geometric_mean(list(speedups.values()))
    assert 3.0 < mean_speedup < 40.0, mean_speedup
    # energy-efficiency gain is severalfold but smaller than the raw
    # speedup (SmarCo burns more watts than the Xeon)
    mean_gain = geometric_mean(list(gains.values()))
    assert 2.0 < mean_gain < 25.0, mean_gain
    assert mean_gain < mean_speedup
