"""Extension benches: the paper's §7 future-work items, implemented.

1. **SPM stream prefetch** ("data penetration and prefetch from memory to
   SPM"): sequential uncached streams get pulled into SPM ahead of use.
2. **In-memory string matching**: a near-memory KMP engine scans DRAM-
   resident text at internal bandwidth and returns only the match count,
   against the baseline of streaming the text to TCG cores over the NoC.
"""

import dataclasses

from repro.analysis import render_table
from repro.chip import SmarCoChip
from repro.config import smarco_scaled
from repro.mem.pim import PimMatchUnit
from repro.noc import GranularityDist
from repro.sim import Simulator
from repro.workloads import get_profile
from repro.workloads.datasets import low_entropy_string
from repro.workloads.kmp import kmp_count


def _run_prefetch(enabled, instrs):
    profile = dataclasses.replace(
        get_profile("kmp"), uncached_fraction=0.15,
        shared_uncached_fraction=0.0, streaming_locality=1.0,
    )
    chip = SmarCoChip(smarco_scaled(2, 8), seed=77, spm_prefetch=enabled)
    chip.load_profile(profile, threads_per_core=8, instrs_per_thread=instrs)
    result = chip.run()
    hits = sum(p.hits.value for p in chip.prefetchers if p is not None)
    return result, hits


def _pim_vs_cores(text_bytes=64 * 1024):
    """Match a DRAM-resident text: near-memory engine vs core streaming."""
    text = low_entropy_string(text_bytes, seed=6)
    pattern = "acgta"

    # near-memory: command + scan at internal bandwidth + reply
    sim = Simulator()
    unit = PimMatchUnit(sim, scan_bytes_per_cycle=64)
    unit.store(0x0, text.encode())
    proc = unit.match(0x0, pattern)
    sim.run()
    pim_cycles = proc.result.latency
    assert proc.result.matches == kmp_count(text, pattern)

    # core baseline: the text streams over the NoC to one sub-ring's
    # cores as small uncached reads (1B scan granularity), cores overlap
    # the scan perfectly — a generous baseline
    chip = SmarCoChip(smarco_scaled(1, 16), seed=6)
    profile = dataclasses.replace(
        get_profile("kmp"),
        granularity=GranularityDist(((1, 1.0),)),
        uncached_fraction=0.45, spm_fraction=0.4,
        shared_uncached_fraction=1.0, mem_ratio=0.45,
    )
    # each byte of text needs ~1 uncached read: instructions per thread
    threads = 16 * 8
    reads_per_thread = text_bytes // threads
    instrs_per_thread = int(reads_per_thread / 0.45 / 0.45)
    chip.load_profile(profile, threads_per_core=8,
                      instrs_per_thread=instrs_per_thread)
    core_cycles = chip.run().cycles
    return pim_cycles, core_cycles, text_bytes


def test_ext_future_work(benchmark, emit, chip_scale):
    instrs = chip_scale[2]

    def sweep():
        on, hits = _run_prefetch(True, instrs)
        off, _ = _run_prefetch(False, instrs)
        pim_cycles, core_cycles, nbytes = _pim_vs_cores()
        return on, hits, off, pim_cycles, core_cycles, nbytes

    on, hits, off, pim_cycles, core_cycles, nbytes = benchmark.pedantic(
        sweep, rounds=1, iterations=1)

    prefetch_tbl = render_table(
        ["configuration", "cycles", "mean req latency", "prefetch hits"],
        [["SPM prefetch ON", round(on.cycles), round(on.mean_request_latency, 1), hits],
         ["SPM prefetch OFF", round(off.cycles), round(off.mean_request_latency, 1), 0]],
        title="Extension 1: stream prefetch into SPM (sequential-scan kmp)",
    )
    pim_tbl = render_table(
        ["engine", "cycles", "speedup"],
        [["near-memory KMP unit", round(pim_cycles), ""],
         ["16 TCG cores over the NoC", round(core_cycles),
          f"{core_cycles / pim_cycles:.1f}x slower"]],
        title=f"Extension 2: string matching over {nbytes // 1024}KB "
              "of DRAM-resident text",
    )
    emit("ext_future_work", prefetch_tbl + "\n\n" + pim_tbl)

    # prefetch: hits happen, latency and runtime drop
    assert hits > 0
    assert on.mean_request_latency < off.mean_request_latency
    assert on.cycles < off.cycles
    # PIM: scanning in memory beats shipping every byte to the cores
    assert pim_cycles < core_cycles / 5
