"""Paper Fig 23: scalability of SmarCo vs Xeon on KMP.

Paper shape: the Xeon rises to a peak around 32-64 threads and then
*falls* (thread creation + scheduling overhead); SmarCo starts far below
(few threads cannot fill 64+ cores) but scales past the Xeon beyond ~64
threads and keeps rising.
"""

from repro.analysis import crossover_index, render_series
from repro.chip import SmarCoChip, XeonSystem
from repro.config import smarco_scaled
from repro.workloads import get_profile

THREADS = [1, 4, 16, 32, 64, 128, 256, 512]
# Throughput (instrs/sec) is work-normalised, so each system can run the
# work volume its model needs: the analytic Xeon gets a large job (the
# paper's KMP datasets are big, so the pthread-creation ramp only bites
# at high thread counts), the DES SmarCo a smaller one.
XEON_TOTAL_WORK = 8_000_000
SMARCO_TOTAL_WORK = 1_500_000


def _xeon_tput(n_threads):
    system = XeonSystem(seed=23)
    per_thread = max(500, XEON_TOTAL_WORK // n_threads)
    result = system.run_profile(get_profile("kmp"), n_threads, per_thread)
    return result.throughput_ips


def _smarco_tput(n_threads, cfg):
    chip = SmarCoChip(cfg, seed=23)
    per_thread = max(200, SMARCO_TOTAL_WORK // n_threads)
    chip.load_profile(get_profile("kmp"), threads_per_core=8,
                      instrs_per_thread=per_thread, total_threads=n_threads)
    return chip.run().throughput_ips


def test_fig23_scalability(benchmark, emit, chip_scale):
    sub_rings, cores, _ = chip_scale
    cfg = smarco_scaled(sub_rings, cores)

    def sweep():
        xeon = [_xeon_tput(n) for n in THREADS]
        smarco = [_smarco_tput(n, cfg) for n in THREADS]
        return xeon, smarco

    xeon, smarco = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit("fig23_scalability", render_series(
        "threads", THREADS,
        {"xeon (Ginstr/s)": [round(v / 1e9, 2) for v in xeon],
         "smarco (Ginstr/s)": [round(v / 1e9, 2) for v in smarco]},
        title="Fig 23: KMP throughput vs thread count",
    ))

    # Xeon peaks in the 32-64 thread region and declines afterwards
    peak_idx = xeon.index(max(xeon))
    assert THREADS[peak_idx] in (16, 32, 64), THREADS[peak_idx]
    assert xeon[-1] < max(xeon), "Xeon must decline past its peak"
    # SmarCo starts below the Xeon at low thread counts
    assert smarco[0] < xeon[0]
    # ...but crosses over and keeps rising
    cross = crossover_index(smarco, xeon)
    assert cross != -1
    assert THREADS[cross] <= 128, f"crossover at {THREADS[cross]}"
    assert smarco[-1] > smarco[THREADS.index(64)]
    assert smarco[-1] > xeon[-1] * 2
