"""Paper Fig 23: scalability of SmarCo vs Xeon on KMP.

Paper shape: the Xeon rises to a peak around 32-64 threads and then
*falls* (thread creation + scheduling overhead); SmarCo starts far below
(few threads cannot fill 64+ cores) but scales past the Xeon beyond ~64
threads and keeps rising.

Both thread ladders (Xeon and SmarCo) are one explicit ``ExperimentSpec``
through the parallel runner — per-thread instruction budgets shrink with
thread count (work-normalised throughput), so this is an explicit request
list rather than a grid.
"""

from repro.analysis import crossover_index, render_series
from repro.config import smarco_scaled
from repro.exp import ExperimentSpec, RunRequest

THREADS = [1, 4, 16, 32, 64, 128, 256, 512]
# Throughput (instrs/sec) is work-normalised, so each system can run the
# work volume its model needs: the analytic Xeon gets a large job (the
# paper's KMP datasets are big, so the pthread-creation ramp only bites
# at high thread counts), the DES SmarCo a smaller one.
XEON_TOTAL_WORK = 8_000_000
SMARCO_TOTAL_WORK = 1_500_000


def test_fig23_scalability(benchmark, emit, chip_scale, exp_runner):
    sub_rings, cores, _ = chip_scale
    cfg = smarco_scaled(sub_rings, cores)

    xeon_requests = [
        RunRequest(kind="xeon", workload="kmp", seed=23, xeon_threads=n,
                   xeon_instrs_per_thread=max(500, XEON_TOTAL_WORK // n))
        for n in THREADS
    ]
    smarco_requests = [
        RunRequest(kind="smarco", workload="kmp", seed=23, smarco_config=cfg,
                   threads_per_core=8, total_threads=n,
                   instrs_per_thread=max(200, SMARCO_TOTAL_WORK // n))
        for n in THREADS
    ]
    spec = ExperimentSpec.explicit("fig23_scalability",
                                   xeon_requests + smarco_requests)

    def sweep():
        results = exp_runner.run(spec).results
        xeon = [r.throughput_ips for r in results[:len(THREADS)]]
        smarco = [r.throughput_ips for r in results[len(THREADS):]]
        return xeon, smarco

    xeon, smarco = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit("fig23_scalability", render_series(
        "threads", THREADS,
        {"xeon (Ginstr/s)": [round(v / 1e9, 2) for v in xeon],
         "smarco (Ginstr/s)": [round(v / 1e9, 2) for v in smarco]},
        title="Fig 23: KMP throughput vs thread count",
    ))

    # Xeon peaks in the 32-64 thread region and declines afterwards
    peak_idx = xeon.index(max(xeon))
    assert THREADS[peak_idx] in (16, 32, 64), THREADS[peak_idx]
    assert xeon[-1] < max(xeon), "Xeon must decline past its peak"
    # SmarCo starts below the Xeon at low thread counts
    assert smarco[0] < xeon[0]
    # ...but crosses over and keeps rising
    cross = crossover_index(smarco, xeon)
    assert cross != -1
    assert THREADS[cross] <= 128, f"crossover at {THREADS[cross]}"
    assert smarco[-1] > smarco[THREADS.index(64)]
    assert smarco[-1] > xeon[-1] * 2
