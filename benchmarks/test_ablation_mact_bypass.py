"""Ablation (paper §3.4): real-time priority bypass of the MACT.

"Thread tasks with the high priority of real-time may bypass MACT, QoS
of these tasks can be guaranteed."  With the bypass disabled, real-time
requests sit in collection lines up to the threshold like everyone else;
with it enabled they go straight to memory.
"""

import dataclasses

from repro.analysis import render_table
from repro.chip import SmarCoChip
from repro.config import MACTConfig, smarco_scaled
from repro.mem.request import Priority
from repro.workloads import get_profile

REALTIME_FRACTION = 0.25


def _run(bypass, instrs):
    base = smarco_scaled(2, 8)
    cfg = dataclasses.replace(
        base, mact=MACTConfig(bypass_priority=bypass),
        ring=dataclasses.replace(base.ring, direct_datapath=False),
    )
    chip = SmarCoChip(cfg, seed=33, realtime_fraction=REALTIME_FRACTION)

    realtime_lat, normal_lat = [], []
    for cid in range(len(chip.cores)):
        original = chip.cores[cid].port._submit

        def spy(request, orig=original):
            prev = request.on_complete

            def record(req, now):
                bucket = (realtime_lat if req.priority is Priority.REALTIME
                          else normal_lat)
                bucket.append(now - req.issue_time)
                if prev is not None:
                    prev(req, now)

            request.on_complete = record
            orig(request)

        chip.cores[cid].port._submit = spy

    chip.load_profile(get_profile("rnc"), threads_per_core=8,
                      instrs_per_thread=instrs)
    chip.run()

    def mean(xs):
        return sum(xs) / len(xs) if xs else 0.0

    bypasses = sum(m.bypasses.value for m in chip.macts)
    return mean(realtime_lat), mean(normal_lat), bypasses


def test_ablation_mact_bypass(benchmark, emit, chip_scale):
    instrs = chip_scale[2]

    def sweep():
        return _run(True, instrs), _run(False, instrs)

    (rt_on, norm_on, n_bypass), (rt_off, norm_off, zero) = benchmark.pedantic(
        sweep, rounds=1, iterations=1)

    emit("ablation_mact_bypass", render_table(
        ["configuration", "realtime req latency", "normal req latency",
         "bypassed requests"],
        [["bypass ON", round(rt_on, 1), round(norm_on, 1), n_bypass],
         ["bypass OFF", round(rt_off, 1), round(norm_off, 1), zero]],
        title="Ablation: MACT real-time bypass (RNC, 25% real-time requests)",
    ))

    assert n_bypass > 0 and zero == 0
    # within a run, bypassing spares real-time requests the collection
    # delay: the (normal - realtime) latency gap widens with the bypass
    gap_on = norm_on - rt_on
    gap_off = norm_off - rt_off
    assert gap_on > gap_off
    # and real-time requests beat collected normal ones outright
    assert rt_on < norm_on
