"""Paper Fig 8: memory-access granularity, HTC vs conventional apps.

Six HTC applications vs eleven SPLASH2 applications: HTC accesses are
dominated by small (<=8 B) granularities; conventional applications sit
at 32-64 B and above.
"""

from repro.analysis import render_table
from repro.sim import Histogram, RngTree
from repro.workloads import HTC_PROFILES, SPLASH2_PROFILES

EDGES = [2, 4, 8, 16, 32, 64]
SAMPLES = 20_000


def _measure(profiles):
    """Sample each profile's generated stream (not just its declared
    distribution) so the figure reflects what the cores actually emit."""
    out = {}
    rng_tree = RngTree(8)
    for name, profile in profiles.items():
        hist = Histogram(name, EDGES)
        rng = rng_tree.stream(name)
        for instr in profile.stream(SAMPLES, rng):
            if instr.is_mem:
                hist.add(instr.size)
        out[name] = hist
    return out


def _sweep():
    return _measure(HTC_PROFILES), _measure(SPLASH2_PROFILES)


def test_fig08_granularity(benchmark, emit):
    htc, splash = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    def table(hists, title):
        labels = next(iter(hists.values())).bin_labels()
        rows = [[name] + [round(f, 3) for f in hist.fractions()]
                for name, hist in sorted(hists.items())]
        return render_table(["app"] + labels, rows, title=title)

    emit("fig08_granularity", "\n\n".join([
        table(htc, "Fig 8 (left): HTC access granularity distribution"),
        table(splash, "Fig 8 (right): conventional (SPLASH2) distribution"),
    ]))

    def small_share(hist, limit=8):
        return sum(f for edge, f in zip(EDGES, hist.fractions())
                   if edge <= limit)

    # HTC: small accesses dominate (K-means is the paper's outlier with
    # vector-sized accesses, so it only needs a non-trivial share)
    shares = {name: small_share(hist) for name, hist in htc.items()}
    assert all(s > 0.25 for s in shares.values()), shares
    assert sum(1 for s in shares.values() if s > 0.5) >= 5, shares
    # conventional: large accesses dominate
    for name, hist in splash.items():
        assert small_share(hist) < 0.2, name
    # mean granularity gap (paper: "much smaller")
    htc_mean = sum(h.mean for h in htc.values()) / len(htc)
    splash_mean = sum(h.mean for h in splash.values()) / len(splash)
    assert splash_mean > 3 * htc_mean
    # KMP and RNC carry the largest tiny-packet (<=2B) share
    tiny = {n: h.fractions()[0] for n, h in htc.items()}
    top_two = sorted(tiny, key=tiny.get, reverse=True)[:2]
    assert set(top_two) == {"kmp", "rnc"}
    # K-means has almost no 1-2B packets
    assert tiny["kmeans"] < 0.05
